//! The `ucp-api/2` wire layer: serializable DTOs mirroring the
//! in-process solve API, plus the wire-error taxonomy.
//!
//! [`SolveRequest`] is a borrow-heavy in-process builder — it can hold a
//! `&CoverMatrix`, a `&mut dyn Probe` and a live [`CancelFlag`](crate::CancelFlag), none of
//! which can cross a network boundary. This module is the owned,
//! serializable mirror that the CLI, the batch engine and the HTTP
//! server (`ucp-server`) all share, so there is exactly one public
//! contract for describing a solve:
//!
//! * [`JobSpec`] — everything about one job *except* the instance:
//!   preset, option overrides, workers, seed, deadline, node budget and
//!   trace sampling. Converts losslessly to and from a request
//!   ([`JobSpec::to_request`] / [`JobSpec::from_request`]).
//! * [`JobResultDto`] / [`JobStatusDto`] / [`JobState`] — the poll-side
//!   DTOs a server returns and a client parses.
//! * [`WireCode`] — the single machine-readable error taxonomy: every
//!   public error in the solve stack maps to a stable code with a fixed
//!   HTTP status ([`WireCode::entry`] is the one table).
//! * [`matrix_to_json`] / [`matrix_from_json`] — the instance itself on
//!   the wire.
//!
//! Serialization is serde-free by design (the workspace builds without
//! registry access): emission uses [`ucp_telemetry::JsonObj`] and
//! parsing the same recursive-descent [`JsonValue`] parser the trace
//! analytics use — one JSON dialect across traces, metrics and the wire
//! API.
//!
//! # Versioning
//!
//! Every envelope carries `"api": "ucp-api/2"` ([`WIRE_API`]). Parsers
//! accept a missing tag (current version implied) and the previous
//! [`WIRE_API_V1`] tag — `ucp-api/2` is a strict superset of `/1`: the
//! new `coverage`/`gub_groups` fields are optional and their absence
//! means the unate problem, so every valid `/1` body is a valid `/2`
//! body with the same meaning. Any other tag is refused, so
//! incompatible future revisions fail loudly instead of misinterpreting
//! fields.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cover::CoverMatrix;
//! use ucp_core::wire::JobSpec;
//! use ucp_core::{Preset, Scg};
//!
//! let mut spec = JobSpec::new(Preset::Fast);
//! spec.seed = Some(7);
//! let parsed = JobSpec::parse(&spec.to_json()).unwrap();
//! assert_eq!(parsed, spec);
//! let m = Arc::new(CoverMatrix::from_rows(
//!     3,
//!     vec![vec![0, 1], vec![1, 2], vec![2, 0]],
//! ));
//! let out = Scg::run(parsed.to_request(m)).unwrap();
//! assert_eq!(out.cost, 2.0);
//! ```

use crate::request::{Preset, SolveError};
use crate::scg::{ScgOptions, ScgOutcome};
use cover::{Constraints, CoverMatrix, GubGroup};
use std::sync::Arc;
use std::time::Duration;
use ucp_telemetry::trace::parse_json;
use ucp_telemetry::{JsonObj, JsonValue};

use crate::SolveRequest;

/// The wire API version tag stamped on every envelope.
pub const WIRE_API: &str = "ucp-api/2";

/// The previous wire version, still accepted on input: `/2` only adds
/// optional fields (`coverage`, `gub_groups`), so `/1` bodies parse
/// unchanged with unate meaning.
pub const WIRE_API_V1: &str = "ucp-api/1";

/// Stable machine-readable error codes — the single taxonomy every
/// error in the solve stack maps onto.
///
/// [`WireCode::entry`] is the one table pairing each code with its
/// string form and HTTP status; the mapping *onto* the taxonomy lives
/// next to each error enum ([`SolveError::wire_code`],
/// `JobError::wire_code`, `SubmitError::wire_code` in `ucp-engine`) as a
/// compile-time-exhaustive match, so a new error variant cannot ship
/// unmapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireCode {
    /// The HTTP envelope or JSON document itself is malformed.
    BadRequest,
    /// Well-formed JSON that does not describe a valid job (unknown
    /// field, bad matrix, out-of-range value, version mismatch).
    InvalidSpec,
    /// The request body exceeds the server's size cap.
    PayloadTooLarge,
    /// No such job (or endpoint).
    NotFound,
    /// The engine's bounded queue is full — retry after a backoff.
    QueueFull,
    /// The tenant's in-flight job quota is exhausted — retry later.
    TenantQuota,
    /// The engine no longer accepts jobs (shutting down).
    EngineClosed,
    /// The job was aborted by an engine shutdown before it ran.
    Shutdown,
    /// The job was cancelled (by `DELETE` or its own `CancelFlag`).
    Cancelled,
    /// The job's deadline budget ran out (queue wait included).
    Expired,
    /// The solve panicked; the job is isolated and the engine healthy.
    Panicked,
    /// The ZDD node budget was exhausted, degraded retry included.
    ResourceExhausted,
    /// The instance has a row no column covers.
    Infeasible,
    /// The job's `coverage`/`gub_groups` constraints do not fit the
    /// instance (wrong length, overlapping groups, or a row whose
    /// demand no feasible selection can supply).
    UnsupportedConstraints,
    /// Any other server-side failure.
    Internal,
}

impl WireCode {
    /// Every code, in taxonomy order (the README table's order).
    pub const ALL: [WireCode; 15] = [
        WireCode::BadRequest,
        WireCode::InvalidSpec,
        WireCode::PayloadTooLarge,
        WireCode::NotFound,
        WireCode::QueueFull,
        WireCode::TenantQuota,
        WireCode::EngineClosed,
        WireCode::Shutdown,
        WireCode::Cancelled,
        WireCode::Expired,
        WireCode::Panicked,
        WireCode::ResourceExhausted,
        WireCode::Infeasible,
        WireCode::UnsupportedConstraints,
        WireCode::Internal,
    ];

    /// **The** taxonomy table: wire string and HTTP status for every
    /// code. All other accessors index this one match.
    pub const fn entry(self) -> (&'static str, u16) {
        match self {
            WireCode::BadRequest => ("bad_request", 400),
            WireCode::InvalidSpec => ("invalid_spec", 400),
            WireCode::PayloadTooLarge => ("payload_too_large", 413),
            WireCode::NotFound => ("not_found", 404),
            WireCode::QueueFull => ("queue_full", 429),
            WireCode::TenantQuota => ("tenant_quota", 429),
            WireCode::EngineClosed => ("engine_closed", 503),
            WireCode::Shutdown => ("shutdown", 503),
            WireCode::Cancelled => ("cancelled", 409),
            WireCode::Expired => ("expired", 504),
            WireCode::Panicked => ("panicked", 500),
            WireCode::ResourceExhausted => ("resource_exhausted", 503),
            WireCode::Infeasible => ("infeasible", 422),
            WireCode::UnsupportedConstraints => ("unsupported_constraints", 422),
            WireCode::Internal => ("internal", 500),
        }
    }

    /// The stable wire string (`"queue_full"`, …).
    pub const fn as_str(self) -> &'static str {
        self.entry().0
    }

    /// The HTTP status this code travels under when it is the response.
    pub const fn http_status(self) -> u16 {
        self.entry().1
    }

    /// Parses a wire string back into its code (clients' direction).
    pub fn parse(s: &str) -> Option<WireCode> {
        WireCode::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl std::fmt::Display for WireCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl SolveError {
    /// This error's wire code. The match is exhaustive on purpose: a
    /// new [`SolveError`] variant fails compilation here until it is
    /// mapped into the taxonomy.
    pub fn wire_code(&self) -> WireCode {
        match self {
            SolveError::Cancelled => WireCode::Cancelled,
            SolveError::Expired => WireCode::Expired,
            SolveError::ResourceExhausted(_) => WireCode::ResourceExhausted,
            SolveError::InvalidConstraints(_) => WireCode::UnsupportedConstraints,
        }
    }
}

/// A wire-level failure: a taxonomy code plus a human-readable message.
/// This is both the parse-error type of this module and the `"error"`
/// object of `ucp-api/2` responses.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    pub code: WireCode,
    pub message: String,
}

impl WireError {
    pub fn new(code: WireCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    fn invalid(message: impl Into<String>) -> Self {
        WireError::new(WireCode::InvalidSpec, message)
    }

    /// Serialises as the `{"code":…,"message":…}` error object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("code", self.code.as_str());
        o.field_str("message", &self.message);
        o.finish()
    }

    /// Parses the `{"code":…,"message":…}` error object.
    pub fn from_json_value(v: &JsonValue) -> Result<WireError, WireError> {
        let code = v
            .get("code")
            .and_then(JsonValue::as_str)
            .and_then(WireCode::parse)
            .ok_or_else(|| WireError::invalid("error object needs a known code"))?;
        let message = v
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        Ok(WireError { code, message })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Why a [`SolveRequest`]'s options cannot be represented as a
/// [`JobSpec`] (the request uses a knob the wire format does not
/// carry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecUnrepresentable {
    /// The option field that diverges from every preset's value.
    pub field: &'static str,
}

impl std::fmt::Display for SpecUnrepresentable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "option {:?} diverges from every preset and has no JobSpec field",
            self.field
        )
    }
}

impl std::error::Error for SpecUnrepresentable {}

/// Owned, serializable mirror of a [`SolveRequest`]'s tunables: the one
/// ingestion path shared by `ucp batch`, the HTTP server and any future
/// front end.
///
/// A spec is a [`Preset`] plus optional overrides; `None` means "the
/// preset's value". [`JobSpec::to_request`] applies it to a matrix;
/// [`JobSpec::from_request`] recovers the spec from a request
/// losslessly (the round-trip `spec → request → spec → request` is
/// options-identical, pinned by tests).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobSpec {
    /// Base option set ([`Preset::Paper`] by default).
    pub preset: Preset,
    /// Restart-stage worker threads (`0` = all cores).
    pub workers: Option<usize>,
    /// RNG seed for the stochastic restarts.
    pub seed: Option<u64>,
    /// Wall-clock budget for the whole job (queue wait included when it
    /// runs through the engine). Millisecond precision on the wire.
    pub deadline: Option<Duration>,
    /// ZDD node budget for the implicit phase (see
    /// [`crate::ZddOptions::node_budget`]; values below 16 clamp to 16).
    pub node_budget: Option<usize>,
    /// Trace-sampling stride for `subgradient_iter` events.
    pub trace_every: Option<usize>,
    /// `NumIter` override: constructive runs.
    pub num_iter: Option<usize>,
    /// `BestCol` randomisation-width growth override.
    pub best_col_growth: Option<usize>,
    /// Rating weight `α` override.
    pub alpha: Option<f64>,
    /// Subgradient iteration-cap override.
    pub max_ascent_iters: Option<usize>,
    /// Enable/disable the implicit (ZDD) reduction phase.
    pub use_implicit: Option<bool>,
    /// On node-budget exhaustion: degrade to explicit (`true`) or fail.
    pub degrade: Option<bool>,
    /// Apply the partitioning reduction.
    pub partition: Option<bool>,
    /// Per-row coverage requirements `b_i` (set multicover). Absent =
    /// all ones, the unate problem — every `ucp-api/1` body keeps its
    /// meaning. New in `ucp-api/2`.
    pub coverage: Option<Vec<u32>>,
    /// Disjoint GUB column groups (at most `bound` columns of each
    /// group selected). Absent = no groups. New in `ucp-api/2`.
    pub gub_groups: Option<Vec<GubGroup>>,
}

impl JobSpec {
    /// A spec with no overrides: exactly the preset's options.
    pub fn new(preset: Preset) -> Self {
        JobSpec {
            preset,
            ..JobSpec::default()
        }
    }

    /// The full option set this spec describes: the preset's options
    /// with every `Some` override applied.
    pub fn options(&self) -> ScgOptions {
        let mut opts = self.preset.options();
        if let Some(w) = self.workers {
            opts.workers = w;
        }
        if let Some(s) = self.seed {
            opts.seed = s;
        }
        if let Some(d) = self.deadline {
            opts.time_limit = Some(d);
        }
        if let Some(n) = self.node_budget {
            opts.core.kernel = opts.core.kernel.node_budget(n);
        }
        if let Some(n) = self.trace_every {
            opts.subgradient.trace_every = n;
        }
        if let Some(n) = self.num_iter {
            opts.num_iter = n;
        }
        if let Some(g) = self.best_col_growth {
            opts.best_col_growth = g;
        }
        if let Some(a) = self.alpha {
            opts.alpha = a;
        }
        if let Some(n) = self.max_ascent_iters {
            opts.subgradient.max_iters = n;
        }
        if let Some(b) = self.use_implicit {
            opts.core.use_implicit = b;
        }
        if let Some(b) = self.degrade {
            opts.core.degrade = b;
        }
        if let Some(b) = self.partition {
            opts.partition = b;
        }
        opts
    }

    /// The constraint set this spec describes (unate when both fields
    /// are absent).
    pub fn constraints(&self) -> Constraints {
        let mut cons = Constraints::new();
        if let Some(c) = &self.coverage {
            cons = cons.coverage(c.clone());
        }
        if let Some(g) = &self.gub_groups {
            cons = cons.gub_groups(g.clone());
        }
        cons
    }

    /// Builds the ready-to-run request for `m` — `Send + 'static`, the
    /// form [`ucp_engine::Engine::submit`](crate::Scg) consumers need.
    pub fn to_request(&self, m: Arc<CoverMatrix>) -> SolveRequest<'static> {
        SolveRequest::for_shared(m)
            .options(self.options())
            .constraints(self.constraints())
    }

    /// Recovers the spec describing `req`'s options *and constraints* —
    /// the inverse of [`JobSpec::to_request`], in *canonical* form
    /// (every covered field explicit, so `from_request(to_request(s)) ==
    /// from_request(to_request(from_request(to_request(s))))`).
    ///
    /// The constraint fields are copied independently of the preset
    /// detection (which keys on the kernel signature): a multicover
    /// request never round-trips into a silently-unate spec.
    ///
    /// # Errors
    ///
    /// [`SpecUnrepresentable`] when the request tunes a knob the wire
    /// format does not carry (e.g. a hand-built kernel sizing or a
    /// non-default `t0`): refusing loudly beats silently dropping the
    /// setting on the floor.
    pub fn from_request(req: &SolveRequest<'_>) -> Result<JobSpec, SpecUnrepresentable> {
        let mut spec = Self::from_options(req.opts())?;
        let cons = req.constraint_set();
        spec.coverage = cons.coverage_vec().map(<[u32]>::to_vec);
        let groups = cons.groups();
        spec.gub_groups = (!groups.is_empty()).then(|| groups.to_vec());
        Ok(spec)
    }

    /// [`JobSpec::from_request`] on a bare option set.
    pub fn from_options(opts: &ScgOptions) -> Result<JobSpec, SpecUnrepresentable> {
        let nb = opts.core.kernel.get_node_budget();
        let node_budget = (nb != usize::MAX).then_some(nb);
        // The preset is identified by the kernel sizing, which is the
        // only preset-varying knob a spec cannot override directly.
        let preset = Preset::ALL
            .into_iter()
            .find(|p| {
                let mut kernel = p.options().core.kernel;
                if let Some(n) = node_budget {
                    kernel = kernel.node_budget(n);
                }
                kernel == opts.core.kernel
            })
            .ok_or(SpecUnrepresentable {
                field: "core.kernel",
            })?;
        // Every field the spec does not carry must sit at the preset's
        // value (presets only vary the covered knobs plus the kernel, so
        // comparing against the detected preset is exact).
        let base = preset.options();
        let check = |same: bool, field: &'static str| {
            if same {
                Ok(())
            } else {
                Err(SpecUnrepresentable { field })
            }
        };
        check(
            opts.fix_cost_threshold == base.fix_cost_threshold,
            "fix_cost_threshold",
        )?;
        check(
            opts.fix_mu_threshold == base.fix_mu_threshold,
            "fix_mu_threshold",
        )?;
        check(opts.dual_pen_limit == base.dual_pen_limit, "dual_pen_limit")?;
        check(
            opts.parallel_nnz_threshold == base.parallel_nnz_threshold,
            "parallel_nnz_threshold",
        )?;
        check(opts.core.max_rows == base.core.max_rows, "core.max_rows")?;
        check(opts.core.max_cols == base.core.max_cols, "core.max_cols")?;
        let (s, b) = (&opts.subgradient, &base.subgradient);
        check(s.t0 == b.t0, "subgradient.t0")?;
        check(
            s.halving_patience == b.halving_patience,
            "subgradient.halving_patience",
        )?;
        check(s.t_min == b.t_min, "subgradient.t_min")?;
        check(s.delta == b.delta, "subgradient.delta")?;
        check(
            s.occurrence_heuristic == b.occurrence_heuristic,
            "subgradient.occurrence_heuristic",
        )?;
        check(
            s.heuristic_period == b.heuristic_period,
            "subgradient.heuristic_period",
        )?;
        check(
            s.record_history == b.record_history,
            "subgradient.record_history",
        )?;
        // `checkpoint_every` is not wire-carried: durable schedulers
        // inject it at run time, so a spec can only represent the
        // default (disabled) setting.
        check(
            opts.checkpoint_every == base.checkpoint_every,
            "checkpoint_every",
        )?;
        Ok(JobSpec {
            preset,
            workers: Some(opts.workers),
            seed: Some(opts.seed),
            deadline: opts.time_limit,
            node_budget,
            trace_every: Some(opts.subgradient.trace_every),
            num_iter: Some(opts.num_iter),
            best_col_growth: Some(opts.best_col_growth),
            alpha: Some(opts.alpha),
            max_ascent_iters: Some(opts.subgradient.max_iters),
            use_implicit: Some(opts.core.use_implicit),
            degrade: Some(opts.core.degrade),
            partition: Some(opts.partition),
            // Constraints are not options; from_request copies them.
            coverage: None,
            gub_groups: None,
        })
    }

    /// The canonical (every-field-explicit) form of this spec: same
    /// options and constraints, normalised representation.
    pub fn canonical(&self) -> JobSpec {
        let mut c =
            Self::from_options(&self.options()).expect("a spec's own options are representable");
        c.coverage = self.coverage.clone();
        c.gub_groups = self.gub_groups.clone();
        c
    }

    /// Serialises the spec; `None` fields are omitted, so the JSON is
    /// minimal and `parse` round-trips exactly.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("preset", self.preset.name());
        if let Some(v) = self.workers {
            o.field_u64("workers", v as u64);
        }
        if let Some(v) = self.seed {
            o.field_u64("seed", v);
        }
        if let Some(v) = self.deadline {
            o.field_u64("deadline_ms", v.as_millis() as u64);
        }
        if let Some(v) = self.node_budget {
            o.field_u64("node_budget", v as u64);
        }
        if let Some(v) = self.trace_every {
            o.field_u64("trace_every", v as u64);
        }
        if let Some(v) = self.num_iter {
            o.field_u64("num_iter", v as u64);
        }
        if let Some(v) = self.best_col_growth {
            o.field_u64("best_col_growth", v as u64);
        }
        if let Some(v) = self.alpha {
            o.field_f64("alpha", v);
        }
        if let Some(v) = self.max_ascent_iters {
            o.field_u64("max_ascent_iters", v as u64);
        }
        if let Some(v) = self.use_implicit {
            o.field_bool("use_implicit", v);
        }
        if let Some(v) = self.degrade {
            o.field_bool("degrade", v);
        }
        if let Some(v) = self.partition {
            o.field_bool("partition", v);
        }
        if let Some(c) = &self.coverage {
            o.field_raw("coverage", &coverage_to_json(c));
        }
        if let Some(g) = &self.gub_groups {
            o.field_raw("gub_groups", &gub_groups_to_json(g));
        }
        o.finish()
    }

    /// Parses a spec object. Unknown fields are refused (a typo'd knob
    /// silently ignored would be a debugging trap), as are non-integral
    /// or out-of-range numbers.
    pub fn from_json_value(v: &JsonValue) -> Result<JobSpec, WireError> {
        let JsonValue::Obj(members) = v else {
            return Err(WireError::invalid("spec must be a JSON object"));
        };
        let mut spec = JobSpec::default();
        for (key, value) in members {
            match key.as_str() {
                "preset" => {
                    spec.preset = value
                        .as_str()
                        .ok_or_else(|| WireError::invalid("preset must be a string"))?
                        .parse::<Preset>()
                        .map_err(WireError::invalid)?;
                }
                "workers" => spec.workers = Some(as_usize(value, "workers")?),
                "seed" => spec.seed = Some(as_u64(value, "seed")?),
                "deadline_ms" => {
                    spec.deadline = Some(Duration::from_millis(as_u64(value, "deadline_ms")?));
                }
                "node_budget" => spec.node_budget = Some(as_usize(value, "node_budget")?),
                "trace_every" => spec.trace_every = Some(as_usize(value, "trace_every")?),
                "num_iter" => spec.num_iter = Some(as_usize(value, "num_iter")?),
                "best_col_growth" => {
                    spec.best_col_growth = Some(as_usize(value, "best_col_growth")?);
                }
                "alpha" => {
                    let a = value
                        .as_f64()
                        .filter(|a| a.is_finite())
                        .ok_or_else(|| WireError::invalid("alpha must be a finite number"))?;
                    spec.alpha = Some(a);
                }
                "max_ascent_iters" => {
                    spec.max_ascent_iters = Some(as_usize(value, "max_ascent_iters")?);
                }
                "use_implicit" => spec.use_implicit = Some(as_bool(value, "use_implicit")?),
                "degrade" => spec.degrade = Some(as_bool(value, "degrade")?),
                "partition" => spec.partition = Some(as_bool(value, "partition")?),
                "coverage" => spec.coverage = Some(coverage_from_json(value)?),
                "gub_groups" => spec.gub_groups = Some(gub_groups_from_json(value)?),
                other => {
                    return Err(WireError::invalid(format!("unknown spec field {other:?}")));
                }
            }
        }
        Ok(spec)
    }

    /// Parses a spec from a JSON string.
    pub fn parse(json: &str) -> Result<JobSpec, WireError> {
        let v = parse_json(json).map_err(|e| WireError::new(WireCode::BadRequest, e))?;
        Self::from_json_value(&v)
    }
}

/// JSON-integer extraction: numbers must be integral, non-negative and
/// exactly representable in an `f64` (≤ 2⁵³).
fn as_u64(v: &JsonValue, field: &str) -> Result<u64, WireError> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    match v.as_f64() {
        Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= MAX_EXACT => Ok(n as u64),
        _ => Err(WireError::invalid(format!(
            "{field} must be a non-negative integer"
        ))),
    }
}

fn as_usize(v: &JsonValue, field: &str) -> Result<usize, WireError> {
    usize::try_from(as_u64(v, field)?)
        .map_err(|_| WireError::invalid(format!("{field} out of range")))
}

fn as_bool(v: &JsonValue, field: &str) -> Result<bool, WireError> {
    v.as_bool()
        .ok_or_else(|| WireError::invalid(format!("{field} must be a boolean")))
}

/// Serialises a coverage vector as a plain JSON array of integers.
fn coverage_to_json(coverage: &[u32]) -> String {
    let mut s = String::from("[");
    for (i, b) in coverage.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&b.to_string());
    }
    s.push(']');
    s
}

/// Parses a `coverage` array: non-negative integers, one per row.
/// Structural only — length and positivity are checked against the
/// instance at solve time (`unsupported_constraints`).
fn coverage_from_json(v: &JsonValue) -> Result<Vec<u32>, WireError> {
    let JsonValue::Arr(items) = v else {
        return Err(WireError::invalid("coverage must be an array of integers"));
    };
    items
        .iter()
        .map(|e| {
            u32::try_from(as_u64(e, "coverage entry")?)
                .map_err(|_| WireError::invalid("coverage entry out of range"))
        })
        .collect()
}

/// Serialises GUB groups as `[{"cols":[…],"bound":k},…]`.
fn gub_groups_to_json(groups: &[GubGroup]) -> String {
    let mut s = String::from("[");
    for (i, g) in groups.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let mut cols = String::from("[");
        for (k, j) in g.cols().iter().enumerate() {
            if k > 0 {
                cols.push(',');
            }
            cols.push_str(&j.to_string());
        }
        cols.push(']');
        let mut o = JsonObj::new();
        o.field_raw("cols", &cols);
        o.field_u64("bound", g.bound() as u64);
        s.push_str(&o.finish());
    }
    s.push(']');
    s
}

/// Parses a `gub_groups` array of `{"cols":…,"bound":…}` objects.
/// Unknown group fields are refused like unknown spec fields;
/// disjointness and range checks happen against the instance at solve
/// time (`unsupported_constraints`).
fn gub_groups_from_json(v: &JsonValue) -> Result<Vec<GubGroup>, WireError> {
    let JsonValue::Arr(items) = v else {
        return Err(WireError::invalid(
            "gub_groups must be an array of group objects",
        ));
    };
    items
        .iter()
        .map(|g| {
            let JsonValue::Obj(members) = g else {
                return Err(WireError::invalid(
                    "each GUB group must be a {\"cols\":…,\"bound\":…} object",
                ));
            };
            for (key, _) in members {
                if key != "cols" && key != "bound" {
                    return Err(WireError::invalid(format!(
                        "unknown GUB group field {key:?}"
                    )));
                }
            }
            let Some(JsonValue::Arr(cols_json)) = g.get("cols") else {
                return Err(WireError::invalid("GUB group needs a cols array"));
            };
            let cols = cols_json
                .iter()
                .map(|e| as_usize(e, "GUB group column"))
                .collect::<Result<Vec<_>, _>>()?;
            let bound = g
                .get("bound")
                .ok_or_else(|| WireError::invalid("GUB group needs a bound"))
                .and_then(|b| as_u64(b, "GUB group bound"))?;
            let bound = u32::try_from(bound)
                .map_err(|_| WireError::invalid("GUB group bound out of range"))?;
            Ok(GubGroup::new(cols, bound))
        })
        .collect()
}

/// Caps on wire-submitted instances, so a single request cannot balloon
/// server memory: 1M rows, 1M columns, 20M nonzeros.
pub const MAX_WIRE_ROWS: usize = 1_000_000;
/// See [`MAX_WIRE_ROWS`].
pub const MAX_WIRE_COLS: usize = 1_000_000;
/// See [`MAX_WIRE_ROWS`].
pub const MAX_WIRE_NNZ: usize = 20_000_000;

/// Serialises a matrix as `{"cols":…,"rows":[[…]],"costs":[…]}` (costs
/// omitted when uniformly 1, the cardinality objective).
pub fn matrix_to_json(m: &CoverMatrix) -> String {
    let mut rows = String::from("[");
    for (i, row) in m.rows().iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push('[');
        for (k, &j) in row.iter().enumerate() {
            if k > 0 {
                rows.push(',');
            }
            rows.push_str(&j.to_string());
        }
        rows.push(']');
    }
    rows.push(']');
    let mut o = JsonObj::new();
    o.field_u64("cols", m.num_cols() as u64);
    o.field_raw("rows", &rows);
    if m.costs().iter().any(|&c| c != 1.0) {
        let mut costs = String::from("[");
        for (j, &c) in m.costs().iter().enumerate() {
            if j > 0 {
                costs.push(',');
            }
            costs.push_str(&format!("{c}"));
        }
        costs.push(']');
        o.field_raw("costs", &costs);
    }
    o.finish()
}

/// Parses and validates a wire matrix. All structural constraints are
/// checked *before* construction so a hostile body gets a clean
/// [`WireCode::InvalidSpec`] instead of tripping `CoverMatrix`'s
/// panicking invariants.
pub fn matrix_from_json(v: &JsonValue) -> Result<CoverMatrix, WireError> {
    let JsonValue::Obj(_) = v else {
        return Err(WireError::invalid("matrix must be a JSON object"));
    };
    let cols = as_usize(
        v.get("cols")
            .ok_or_else(|| WireError::invalid("matrix needs a cols field"))?,
        "matrix.cols",
    )?;
    if cols == 0 || cols > MAX_WIRE_COLS {
        return Err(WireError::invalid(format!(
            "matrix.cols must be in 1..={MAX_WIRE_COLS}"
        )));
    }
    let Some(JsonValue::Arr(rows)) = v.get("rows") else {
        return Err(WireError::invalid("matrix needs a rows array"));
    };
    if rows.len() > MAX_WIRE_ROWS {
        return Err(WireError::invalid(format!(
            "matrix has more than {MAX_WIRE_ROWS} rows"
        )));
    }
    let mut nnz = 0usize;
    let mut parsed_rows = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let JsonValue::Arr(entries) = row else {
            return Err(WireError::invalid(format!("row {i} must be an array")));
        };
        nnz += entries.len();
        if nnz > MAX_WIRE_NNZ {
            return Err(WireError::invalid(format!(
                "matrix has more than {MAX_WIRE_NNZ} nonzeros"
            )));
        }
        let mut cols_of_row = Vec::with_capacity(entries.len());
        for e in entries {
            let j = as_usize(e, "matrix row entry")?;
            if j >= cols {
                return Err(WireError::invalid(format!(
                    "row {i} references column {j} >= cols ({cols})"
                )));
            }
            cols_of_row.push(j);
        }
        parsed_rows.push(cols_of_row);
    }
    let costs = match v.get("costs") {
        None => vec![1.0; cols],
        Some(JsonValue::Arr(items)) => {
            if items.len() != cols {
                return Err(WireError::invalid(format!(
                    "costs has {} entries, cols is {cols}",
                    items.len()
                )));
            }
            let mut costs = Vec::with_capacity(cols);
            for (j, item) in items.iter().enumerate() {
                match item.as_f64() {
                    Some(c) if c.is_finite() && c >= 0.0 => costs.push(c),
                    _ => {
                        return Err(WireError::invalid(format!(
                            "cost {j} must be finite and non-negative"
                        )))
                    }
                }
            }
            costs
        }
        Some(_) => return Err(WireError::invalid("costs must be an array")),
    };
    Ok(CoverMatrix::with_costs(cols, parsed_rows, costs))
}

/// A parsed `POST /v1/jobs` body: instance + spec + submission options.
#[derive(Clone, Debug)]
pub struct SubmitBody {
    /// The instance to solve.
    pub matrix: CoverMatrix,
    /// The job's tunables.
    pub spec: JobSpec,
    /// Tenant for admission control (falls back to the transport-level
    /// tenant header, then to `"anonymous"`, at the server).
    pub tenant: Option<String>,
    /// Capture a `ucp-trace/1` stream for `GET /v1/jobs/{id}/trace`.
    pub trace: bool,
}

impl SubmitBody {
    /// Serialises the body (the client's direction).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("api", WIRE_API);
        if let Some(t) = &self.tenant {
            o.field_str("tenant", t);
        }
        if self.trace {
            o.field_bool("trace", true);
        }
        o.field_raw("spec", &self.spec.to_json());
        o.field_raw("matrix", &matrix_to_json(&self.matrix));
        o.finish()
    }

    /// Parses and validates a submission body.
    pub fn parse(body: &str) -> Result<SubmitBody, WireError> {
        let v = parse_json(body)
            .map_err(|e| WireError::new(WireCode::BadRequest, format!("invalid JSON: {e}")))?;
        let JsonValue::Obj(_) = v else {
            return Err(WireError::new(
                WireCode::BadRequest,
                "body must be a JSON object",
            ));
        };
        check_api_tag(&v)?;
        let mut spec = match v.get("spec") {
            Some(s) => JobSpec::from_json_value(s)?,
            None => JobSpec::default(),
        };
        let matrix_json = v
            .get("matrix")
            .ok_or_else(|| WireError::invalid("body needs a matrix"))?;
        let matrix = matrix_from_json(matrix_json)?;
        // Constraints may ride on the matrix object instead of the spec
        // (they describe the instance as much as the job), but only one
        // of the two places — a silent override would be a trap.
        if let Some(c) = matrix_json.get("coverage") {
            if spec.coverage.is_some() {
                return Err(WireError::invalid(
                    "coverage given on both the matrix and the spec",
                ));
            }
            spec.coverage = Some(coverage_from_json(c)?);
        }
        if let Some(g) = matrix_json.get("gub_groups") {
            if spec.gub_groups.is_some() {
                return Err(WireError::invalid(
                    "gub_groups given on both the matrix and the spec",
                ));
            }
            spec.gub_groups = Some(gub_groups_from_json(g)?);
        }
        let tenant = match v.get("tenant") {
            None => None,
            Some(t) => Some(
                t.as_str()
                    .filter(|t| !t.is_empty() && t.len() <= 64)
                    .ok_or_else(|| {
                        WireError::invalid("tenant must be a non-empty string (max 64 bytes)")
                    })?
                    .to_string(),
            ),
        };
        let trace = match v.get("trace") {
            None => false,
            Some(t) => as_bool(t, "trace")?,
        };
        Ok(SubmitBody {
            matrix,
            spec,
            tenant,
            trace,
        })
    }
}

/// Envelope version check: absent tag = current version; the previous
/// [`WIRE_API_V1`] is accepted too (the `/2` additions are optional
/// fields, so `/1` bodies keep their meaning); anything else is refused.
pub fn check_api_tag(v: &JsonValue) -> Result<(), WireError> {
    match v.get("api") {
        None => Ok(()),
        Some(tag) if tag.as_str() == Some(WIRE_API) || tag.as_str() == Some(WIRE_API_V1) => Ok(()),
        Some(tag) => Err(WireError::invalid(format!(
            "unsupported api version {tag:?} (this server speaks {WIRE_API} \
             and accepts {WIRE_API_V1})"
        ))),
    }
}

/// Wire-visible lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; queued or running.
    Pending,
    /// Resolved with a feasible cover ([`JobStatusDto::result`] set).
    Done,
    /// Resolved without one ([`JobStatusDto::error`] set).
    Failed,
}

impl JobState {
    pub const fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    pub fn parse(s: &str) -> Option<JobState> {
        [JobState::Pending, JobState::Done, JobState::Failed]
            .into_iter()
            .find(|j| j.as_str() == s)
    }

    /// Terminal states never change on a later poll.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Pending)
    }
}

/// Serializable mirror of the interesting [`ScgOutcome`] fields — what
/// `GET /v1/jobs/{id}` returns for a finished job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobResultDto {
    pub cost: f64,
    pub lower_bound: f64,
    pub proven_optimal: bool,
    pub infeasible: bool,
    /// Chosen columns, original indices.
    pub columns: Vec<usize>,
    pub iterations: usize,
    pub subgradient_iterations: usize,
    pub degraded: bool,
    pub total_seconds: f64,
    pub core_rows: usize,
    pub core_cols: usize,
}

impl JobResultDto {
    /// Projects an outcome onto the wire shape.
    pub fn from_outcome(out: &ScgOutcome) -> Self {
        JobResultDto {
            cost: out.cost,
            lower_bound: out.lower_bound,
            proven_optimal: out.proven_optimal,
            infeasible: out.infeasible,
            columns: out.solution.cols().to_vec(),
            iterations: out.iterations,
            subgradient_iterations: out.subgradient_iterations,
            degraded: out.degraded,
            total_seconds: out.total_time.as_secs_f64(),
            core_rows: out.core_rows,
            core_cols: out.core_cols,
        }
    }

    pub fn to_json(&self) -> String {
        let mut cols = String::from("[");
        for (k, j) in self.columns.iter().enumerate() {
            if k > 0 {
                cols.push(',');
            }
            cols.push_str(&j.to_string());
        }
        cols.push(']');
        let mut o = JsonObj::new();
        o.field_f64("cost", self.cost);
        o.field_f64("lower_bound", self.lower_bound);
        o.field_bool("proven_optimal", self.proven_optimal);
        o.field_bool("infeasible", self.infeasible);
        o.field_raw("columns", &cols);
        o.field_u64("iterations", self.iterations as u64);
        o.field_u64("subgradient_iterations", self.subgradient_iterations as u64);
        o.field_bool("degraded", self.degraded);
        o.field_f64("total_seconds", self.total_seconds);
        o.field_u64("core_rows", self.core_rows as u64);
        o.field_u64("core_cols", self.core_cols as u64);
        o.finish()
    }

    pub fn from_json_value(v: &JsonValue) -> Result<JobResultDto, WireError> {
        let num = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| WireError::invalid(format!("result needs numeric {k}")))
        };
        let flag = |k: &str| v.get(k).and_then(JsonValue::as_bool).unwrap_or(false);
        let columns = match v.get("columns") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|e| as_usize(e, "result column"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(WireError::invalid("result needs a columns array")),
        };
        Ok(JobResultDto {
            cost: num("cost")?,
            lower_bound: num("lower_bound")?,
            proven_optimal: flag("proven_optimal"),
            infeasible: flag("infeasible"),
            columns,
            iterations: num("iterations").unwrap_or(0.0) as usize,
            subgradient_iterations: num("subgradient_iterations").unwrap_or(0.0) as usize,
            degraded: flag("degraded"),
            total_seconds: num("total_seconds").unwrap_or(0.0),
            core_rows: num("core_rows").unwrap_or(0.0) as usize,
            core_cols: num("core_cols").unwrap_or(0.0) as usize,
        })
    }
}

/// The `GET /v1/jobs/{id}` (and `POST /v1/jobs` acknowledgement)
/// response: one job's wire-visible state.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatusDto {
    /// Server-assigned id (`"j-17"`).
    pub id: String,
    pub state: JobState,
    pub tenant: String,
    /// `true` when admission control degraded this job to the Fast
    /// preset under queue pressure.
    pub shed: bool,
    /// `true` once `DELETE` (or the engine) requested cancellation; the
    /// state turns terminal when the worker observes it.
    pub cancel_requested: bool,
    /// Set for [`JobState::Done`] — and for a [`JobState::Failed`]
    /// infeasible solve, where the partial outcome is still returned.
    pub result: Option<JobResultDto>,
    /// Set for [`JobState::Failed`].
    pub error: Option<WireError>,
    /// `true` when this job was re-enqueued from the durability journal
    /// after a server restart (see `ucp_durability`). Recovered jobs
    /// keep their original id and deadline.
    pub recovered: bool,
}

impl JobStatusDto {
    /// Serialises the full response document (with the `api` tag).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("api", WIRE_API);
        o.field_str("id", &self.id);
        o.field_str("state", self.state.as_str());
        o.field_str("tenant", &self.tenant);
        o.field_bool("shed", self.shed);
        o.field_bool("cancel_requested", self.cancel_requested);
        // Emitted only when set, keeping pre-durability responses
        // byte-identical.
        if self.recovered {
            o.field_bool("recovered", true);
        }
        if let Some(r) = &self.result {
            o.field_raw("result", &r.to_json());
        }
        if let Some(e) = &self.error {
            o.field_raw("error", &e.to_json());
        }
        o.finish()
    }

    /// Parses a status document (the client's direction).
    pub fn parse(json: &str) -> Result<JobStatusDto, WireError> {
        let v = parse_json(json).map_err(|e| WireError::new(WireCode::BadRequest, e))?;
        check_api_tag(&v)?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| WireError::invalid("status needs an id"))?
            .to_string();
        let state = v
            .get("state")
            .and_then(JsonValue::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| WireError::invalid("status needs a known state"))?;
        let tenant = v
            .get("tenant")
            .and_then(JsonValue::as_str)
            .unwrap_or("anonymous")
            .to_string();
        let flag = |k: &str| v.get(k).and_then(JsonValue::as_bool).unwrap_or(false);
        let result = match v.get("result") {
            Some(r) => Some(JobResultDto::from_json_value(r)?),
            None => None,
        };
        let error = match v.get("error") {
            Some(e) => Some(WireError::from_json_value(e)?),
            None => None,
        };
        Ok(JobStatusDto {
            id,
            state,
            tenant,
            shed: flag("shed"),
            cancel_requested: flag("cancel_requested"),
            result,
            error,
            recovered: flag("recovered"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scg;

    fn cycle(n: usize) -> CoverMatrix {
        CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
    }

    fn sample_specs() -> Vec<JobSpec> {
        let mut specs = vec![
            JobSpec::default(),
            JobSpec::new(Preset::Fast),
            JobSpec::new(Preset::Thorough),
        ];
        let mut rich = JobSpec::new(Preset::Fast);
        rich.workers = Some(3);
        rich.seed = Some(42);
        rich.deadline = Some(Duration::from_millis(1500));
        rich.node_budget = Some(4096);
        rich.trace_every = Some(25);
        rich.num_iter = Some(2);
        rich.best_col_growth = Some(3);
        rich.alpha = Some(1.5);
        rich.max_ascent_iters = Some(77);
        rich.use_implicit = Some(false);
        rich.degrade = Some(false);
        rich.partition = Some(false);
        specs.push(rich);
        let mut partial = JobSpec::new(Preset::Paper);
        partial.seed = Some(9);
        partial.node_budget = Some(100_000);
        specs.push(partial);
        let mut multicover = JobSpec::new(Preset::Fast);
        multicover.coverage = Some(vec![2, 1, 1, 2, 1]);
        multicover.gub_groups = Some(vec![
            GubGroup::new(vec![0, 2], 1),
            GubGroup::new(vec![1, 3], 2),
        ]);
        specs.push(multicover);
        specs
    }

    #[test]
    fn spec_round_trips_through_request_losslessly() {
        let m = Arc::new(cycle(5));
        for spec in sample_specs() {
            let req = spec.to_request(Arc::clone(&m));
            let recovered = JobSpec::from_request(&req).expect("representable");
            // Request-level losslessness: identical options bit for bit.
            assert_eq!(
                recovered.options(),
                *req.opts(),
                "options drifted for {spec:?}"
            );
            // Canonical-form idempotence.
            assert_eq!(recovered, spec.canonical(), "canonical drift for {spec:?}");
            assert_eq!(recovered.canonical(), recovered);
        }
    }

    #[test]
    fn every_spec_field_survives_the_round_trip() {
        let mut spec = JobSpec::new(Preset::Thorough);
        spec.workers = Some(2);
        spec.seed = Some(7);
        spec.deadline = Some(Duration::from_secs(3));
        spec.node_budget = Some(999);
        spec.trace_every = Some(10);
        spec.num_iter = Some(5);
        spec.best_col_growth = Some(4);
        spec.alpha = Some(2.5);
        spec.max_ascent_iters = Some(123);
        spec.use_implicit = Some(true);
        spec.degrade = Some(true);
        spec.partition = Some(true);
        let r = JobSpec::from_options(&spec.options()).unwrap();
        assert_eq!(r.preset, Preset::Thorough);
        assert_eq!(r.workers, Some(2));
        assert_eq!(r.seed, Some(7));
        assert_eq!(r.deadline, Some(Duration::from_secs(3)));
        assert_eq!(r.node_budget, Some(999));
        assert_eq!(r.trace_every, Some(10));
        assert_eq!(r.num_iter, Some(5));
        assert_eq!(r.best_col_growth, Some(4));
        assert_eq!(r.alpha, Some(2.5));
        assert_eq!(r.max_ascent_iters, Some(123));
        assert_eq!(r.use_implicit, Some(true));
        assert_eq!(r.degrade, Some(true));
        assert_eq!(r.partition, Some(true));
    }

    #[test]
    fn spec_json_round_trips() {
        for spec in sample_specs() {
            let json = spec.to_json();
            let parsed = JobSpec::parse(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn unknown_spec_fields_are_refused() {
        let err = JobSpec::parse(r#"{"preset":"fast","warp_factor":9}"#).unwrap_err();
        assert_eq!(err.code, WireCode::InvalidSpec);
        assert!(err.message.contains("warp_factor"), "{err}");
    }

    #[test]
    fn non_integral_numbers_are_refused() {
        for body in [
            r#"{"workers":1.5}"#,
            r#"{"seed":-3}"#,
            r#"{"num_iter":1e300}"#,
            r#"{"alpha":"two"}"#,
        ] {
            let err = JobSpec::parse(body).unwrap_err();
            assert_eq!(err.code, WireCode::InvalidSpec, "{body}");
        }
    }

    #[test]
    fn unrepresentable_options_are_refused_loudly() {
        let mut custom_kernel = ScgOptions::default();
        custom_kernel.core.kernel = crate::ZddOptions::new().unique_capacity(12345);
        assert_eq!(
            JobSpec::from_options(&custom_kernel).unwrap_err().field,
            "core.kernel"
        );
        let mut custom_t0 = ScgOptions::default();
        custom_t0.subgradient.t0 = 17.0;
        assert_eq!(
            JobSpec::from_options(&custom_t0).unwrap_err().field,
            "subgradient.t0"
        );
    }

    #[test]
    fn matrix_json_round_trips_with_and_without_costs() {
        let unit = cycle(5);
        let v = parse_json(&matrix_to_json(&unit)).unwrap();
        assert_eq!(matrix_from_json(&v).unwrap(), unit);
        let weighted =
            CoverMatrix::with_costs(3, vec![vec![0, 1], vec![1, 2]], vec![1.0, 2.5, 0.0]);
        let v = parse_json(&matrix_to_json(&weighted)).unwrap();
        assert_eq!(matrix_from_json(&v).unwrap(), weighted);
    }

    #[test]
    fn hostile_matrices_get_clean_errors_not_panics() {
        for body in [
            r#"{"cols":0,"rows":[]}"#,
            r#"{"cols":3,"rows":[[3]]}"#,
            r#"{"cols":3,"rows":[[-1]]}"#,
            r#"{"cols":3,"rows":[[0.5]]}"#,
            r#"{"cols":3,"rows":"x"}"#,
            r#"{"cols":3}"#,
            r#"{"rows":[[0]]}"#,
            r#"{"cols":3,"rows":[[0]],"costs":[1,2]}"#,
            r#"{"cols":2,"rows":[[0]],"costs":[1,-2]}"#,
            r#"{"cols":2000000,"rows":[]}"#,
        ] {
            let v = parse_json(body).unwrap();
            let err = matrix_from_json(&v).unwrap_err();
            assert_eq!(err.code, WireCode::InvalidSpec, "{body}");
        }
    }

    #[test]
    fn submit_body_round_trips() {
        let body = SubmitBody {
            matrix: cycle(7),
            spec: JobSpec::new(Preset::Fast),
            tenant: Some("acme".into()),
            trace: true,
        };
        let parsed = SubmitBody::parse(&body.to_json()).unwrap();
        assert_eq!(parsed.matrix, body.matrix);
        assert_eq!(parsed.spec, body.spec);
        assert_eq!(parsed.tenant.as_deref(), Some("acme"));
        assert!(parsed.trace);
    }

    #[test]
    fn api_version_mismatch_is_refused() {
        let err = SubmitBody::parse(r#"{"api":"ucp-api/9","matrix":{"cols":1,"rows":[[0]]}}"#)
            .unwrap_err();
        assert_eq!(err.code, WireCode::InvalidSpec);
        assert!(err.message.contains("ucp-api/2"), "{err}");
        assert!(err.message.contains("ucp-api/1"), "{err}");
    }

    #[test]
    fn legacy_v1_bodies_still_parse() {
        let body = SubmitBody::parse(
            r#"{"api":"ucp-api/1","matrix":{"cols":2,"rows":[[0],[1]]},"spec":{"preset":"fast"}}"#,
        )
        .unwrap();
        assert_eq!(body.spec.preset, Preset::Fast);
        assert!(body.spec.constraints().is_unate(), "absent fields = unate");
    }

    #[test]
    fn constraints_ride_on_the_matrix_but_not_both_places() {
        let body = SubmitBody::parse(
            r#"{"matrix":{"cols":2,"rows":[[0,1],[0,1]],"coverage":[2,1],
                "gub_groups":[{"cols":[0,1],"bound":2}]}}"#,
        )
        .unwrap();
        assert_eq!(body.spec.coverage, Some(vec![2, 1]));
        assert_eq!(
            body.spec.gub_groups,
            Some(vec![GubGroup::new(vec![0, 1], 2)])
        );
        let err = SubmitBody::parse(
            r#"{"matrix":{"cols":2,"rows":[[0,1]],"coverage":[2]},
                "spec":{"coverage":[1]}}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, WireCode::InvalidSpec);
        assert!(err.message.contains("both"), "{err}");
    }

    #[test]
    fn hostile_constraint_fields_get_clean_errors() {
        for body in [
            r#"{"coverage":7}"#,
            r#"{"coverage":[-1]}"#,
            r#"{"coverage":[1.5]}"#,
            r#"{"gub_groups":{}}"#,
            r#"{"gub_groups":[7]}"#,
            r#"{"gub_groups":[{"cols":[0]}]}"#,
            r#"{"gub_groups":[{"bound":1}]}"#,
            r#"{"gub_groups":[{"cols":[0],"bound":-1}]}"#,
            r#"{"gub_groups":[{"cols":[0],"bound":1,"warp":9}]}"#,
        ] {
            let err = JobSpec::parse(body).unwrap_err();
            assert_eq!(err.code, WireCode::InvalidSpec, "{body}");
        }
    }

    #[test]
    fn multicover_spec_never_round_trips_as_unate() {
        let m = Arc::new(cycle(5));
        let mut spec = JobSpec::new(Preset::Paper);
        spec.coverage = Some(vec![2; 5]);
        let req = spec.to_request(Arc::clone(&m));
        assert!(!req.constraint_set().is_unate());
        let recovered = JobSpec::from_request(&req).expect("representable");
        // The preset detection keys on the kernel signature; the
        // constraint fields must survive independently of it.
        assert_eq!(recovered.preset, Preset::Paper);
        assert_eq!(recovered.coverage, Some(vec![2; 5]));
        assert!(!recovered.constraints().is_unate());
    }

    #[test]
    fn wire_codes_are_unique_and_statuses_sane() {
        let mut seen = std::collections::HashSet::new();
        for code in WireCode::ALL {
            let (s, status) = code.entry();
            assert!(seen.insert(s), "duplicate wire code {s}");
            assert!((400..600).contains(&status), "{s}: bad status {status}");
            assert_eq!(WireCode::parse(s), Some(code));
        }
        assert_eq!(WireCode::parse("no_such_code"), None);
    }

    #[test]
    fn solve_errors_map_into_the_taxonomy() {
        let overflow = crate::ZddOverflow {
            budget: 16,
            live: 17,
        };
        assert_eq!(SolveError::Cancelled.wire_code(), WireCode::Cancelled);
        assert_eq!(SolveError::Expired.wire_code(), WireCode::Expired);
        assert_eq!(
            SolveError::ResourceExhausted(overflow).wire_code(),
            WireCode::ResourceExhausted
        );
        assert_eq!(
            SolveError::InvalidConstraints(cover::ConstraintError::ZeroCoverage { row: 0 })
                .wire_code(),
            WireCode::UnsupportedConstraints
        );
    }

    #[test]
    fn status_dto_round_trips() {
        let m = cycle(9);
        let out = Scg::run(SolveRequest::for_matrix(&m).preset(Preset::Fast)).unwrap();
        let status = JobStatusDto {
            id: "j-3".into(),
            state: JobState::Done,
            tenant: "acme".into(),
            shed: true,
            cancel_requested: false,
            recovered: true,
            result: Some(JobResultDto::from_outcome(&out)),
            error: None,
        };
        let parsed = JobStatusDto::parse(&status.to_json()).unwrap();
        assert_eq!(parsed, status);
        assert_eq!(parsed.result.unwrap().cost, out.cost);

        let failed = JobStatusDto {
            id: "j-4".into(),
            state: JobState::Failed,
            tenant: "anonymous".into(),
            shed: false,
            cancel_requested: true,
            recovered: false,
            result: None,
            error: Some(WireError::new(WireCode::Cancelled, "job cancelled")),
        };
        let parsed = JobStatusDto::parse(&failed.to_json()).unwrap();
        assert_eq!(parsed, failed);
        assert_eq!(parsed.error.unwrap().code, WireCode::Cancelled);
    }

    #[test]
    fn spec_to_request_solves_like_the_builder_path() {
        let m = Arc::new(cycle(9));
        let mut spec = JobSpec::new(Preset::Fast);
        spec.seed = Some(11);
        let via_spec = Scg::run(spec.to_request(Arc::clone(&m))).unwrap();
        let via_builder = Scg::run(
            SolveRequest::for_shared(Arc::clone(&m))
                .preset(Preset::Fast)
                .seed(11),
        )
        .unwrap();
        assert_eq!(via_spec.cost, via_builder.cost);
        assert_eq!(via_spec.solution.cols(), via_builder.solution.cols());
    }
}
