//! The unified solve API: [`SolveRequest`], [`Preset`], [`CancelFlag`]
//! and [`SolveError`].
//!
//! Historically the solver grew four entrypoints (`solve`,
//! `solve_with_probe`, `solve_parallel`, `solve_parallel_with_probe`)
//! plus an ad-hoc `ScgOptions::fast()` preset. They all collapse into
//! one call:
//!
//! ```
//! use cover::CoverMatrix;
//! use ucp_core::{Scg, SolveRequest};
//!
//! let m = CoverMatrix::from_rows(
//!     5,
//!     vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
//! );
//! let out = Scg::run(SolveRequest::for_matrix(&m).workers(4)).unwrap();
//! assert_eq!(out.cost, 3.0);
//! ```
//!
//! A request describes *everything* about one solve: the instance, the
//! tunables (usually via a [`Preset`]), the worker count, an optional
//! wall-clock deadline, the RNG seed, an optional telemetry probe, and
//! an optional [`CancelFlag`] that aborts the solve cooperatively from
//! another thread. Requests built from an owned matrix
//! ([`SolveRequest::for_shared`]) are `Send + 'static`, which is what
//! lets `ucp-engine` queue them across a long-lived worker pool.

use crate::checkpoint::SolverCheckpoint;
use crate::scg::{Scg, ScgOptions, ScgOutcome};
use crate::subgradient::SubgradientOptions;
use cover::{
    ConstraintError, Constraints, CoreOptions, CoverMatrix, GubGroup, ZddOptions, ZddOverflow,
};
use std::sync::Arc;
use std::time::Duration;
use ucp_telemetry::{Event, NoopProbe, Probe};

// The cancellation primitive lives in `cover` (it is polled down inside
// the implicit-reduction operation boundaries), re-exported here so the
// solve API stays one import.
pub use cover::CancelFlag;

/// Named option presets replacing the old `ScgOptions::fast()`/default
/// split.
///
/// Each preset pins the paper's headline knobs — `NumIter` (number of
/// constructive runs), the `BestCol` randomisation width growth, and
/// the rating weight `α` in `σ_j = c̃_j − α·μ_j` — plus the subgradient
/// iteration cap:
///
/// | preset | `NumIter` | `BestCol` growth | `α` | subgradient iters |
/// |---|---|---|---|---|
/// | [`Preset::Paper`] | 4 | 1 (width `min(k, 16)`) | 2.0 | 300 |
/// | [`Preset::Fast`] | 1 | 1 (deterministic run only) | 2.0 | 120 |
/// | [`Preset::Thorough`] | 12 | 2 (width `min(2k−1, 16)`) | 2.0 | 600 |
///
/// `Paper` is the published configuration (and `ScgOptions::default()`).
/// `Fast` is for tests and large sweeps: the single deterministic run,
/// shorter ascents. `Thorough` spends ~3× the paper's restart schedule
/// with wider randomisation and longer ascents for hard instances where
/// the certificate does not close early. All other fields (`ĉ`, `μ̂`,
/// `DualPen`, seed, partitioning) keep their paper defaults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Preset {
    /// The paper's published parameters (`ScgOptions::default()`).
    #[default]
    Paper,
    /// Single deterministic run, short ascents: tests and sweeps.
    Fast,
    /// Triple restart schedule, wider `BestCol`, longer ascents.
    Thorough,
}

impl Preset {
    /// All presets, in increasing effort order.
    pub const ALL: [Preset; 3] = [Preset::Fast, Preset::Paper, Preset::Thorough];

    /// The full option set this preset names.
    ///
    /// Besides the heuristic knobs, each preset also selects ZDD kernel
    /// tunables for the implicit phase (threaded through
    /// [`CoreOptions::kernel`]): `Fast` shrinks the tables and collects
    /// eagerly to keep many concurrent sweep solves memory-lean,
    /// `Thorough` pre-sizes for hard instances and lets the store grow
    /// further between collections. Kernel settings never change
    /// results — only speed and memory — so every preset stays
    /// bit-identical to itself across kernel revisions.
    pub fn options(self) -> ScgOptions {
        match self {
            Preset::Paper => ScgOptions::default(),
            Preset::Fast => ScgOptions {
                num_iter: 1,
                subgradient: SubgradientOptions {
                    max_iters: 120,
                    ..SubgradientOptions::default()
                },
                core: CoreOptions {
                    kernel: ZddOptions::new()
                        .unique_capacity(1 << 10)
                        .cache_capacity(1 << 13)
                        .gc_threshold(1 << 14),
                    ..CoreOptions::default()
                },
                ..ScgOptions::default()
            },
            Preset::Thorough => ScgOptions {
                num_iter: 12,
                best_col_growth: 2,
                subgradient: SubgradientOptions {
                    max_iters: 600,
                    ..SubgradientOptions::default()
                },
                core: CoreOptions {
                    kernel: ZddOptions::new()
                        .unique_capacity(1 << 14)
                        .cache_capacity(1 << 17)
                        .gc_threshold(1 << 18),
                    ..CoreOptions::default()
                },
                ..ScgOptions::default()
            },
        }
    }

    /// The CLI-facing name (`paper`, `fast`, `thorough`).
    pub fn name(self) -> &'static str {
        match self {
            Preset::Paper => "paper",
            Preset::Fast => "fast",
            Preset::Thorough => "thorough",
        }
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Preset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "paper" | "default" => Ok(Preset::Paper),
            "fast" => Ok(Preset::Fast),
            "thorough" => Ok(Preset::Thorough),
            other => Err(format!(
                "unknown preset {other:?} (expected paper, fast or thorough)"
            )),
        }
    }
}

/// Why [`Scg::run`] returned no outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The request's [`CancelFlag`] tripped before or during the solve.
    /// Whatever partial work was done is discarded.
    Cancelled,
    /// The request's deadline passed before the solve produced any
    /// feasible cover — the budget ran out inside the reduction stage.
    /// (A deadline reached *after* reduction degrades gracefully instead:
    /// the restarts stop and the best cover so far is returned.)
    Expired,
    /// The ZDD kernel's node budget was exhausted with degradation
    /// disabled ([`cover::CoreOptions::degrade`] `= false`). With the
    /// default options this cannot happen: the solve falls back to the
    /// explicit representation and reports
    /// [`ScgOutcome::degraded`](crate::ScgOutcome) instead.
    ResourceExhausted(ZddOverflow),
    /// The request's [`Constraints`] do not fit the instance — a
    /// malformed coverage vector or group set, or a demand no column
    /// subset can meet. Caught before any solving starts; the carried
    /// [`ConstraintError`] says which row/group and why.
    InvalidConstraints(ConstraintError),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Cancelled => f.write_str("solve cancelled"),
            SolveError::Expired => f.write_str("solve deadline expired before a cover was found"),
            SolveError::ResourceExhausted(_) => f.write_str("solve exhausted its resource budget"),
            SolveError::InvalidConstraints(_) => {
                f.write_str("solve constraints do not fit the instance")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::ResourceExhausted(e) => Some(e),
            SolveError::InvalidConstraints(e) => Some(e),
            SolveError::Cancelled | SolveError::Expired => None,
        }
    }
}

impl From<ConstraintError> for SolveError {
    fn from(e: ConstraintError) -> Self {
        SolveError::InvalidConstraints(e)
    }
}

impl From<ZddOverflow> for SolveError {
    fn from(e: ZddOverflow) -> Self {
        SolveError::ResourceExhausted(e)
    }
}

/// The instance a request solves: borrowed for inline calls, shared
/// (`Arc`) for requests that outlive their builder, e.g. engine jobs.
enum MatrixSource<'a> {
    Borrowed(&'a CoverMatrix),
    Shared(Arc<CoverMatrix>),
}

impl MatrixSource<'_> {
    fn get(&self) -> &CoverMatrix {
        match self {
            MatrixSource::Borrowed(m) => m,
            MatrixSource::Shared(m) => m,
        }
    }
}

/// Where a request's telemetry goes. Probes are `Send` in both forms so
/// a `SolveRequest<'static>` can cross threads whole.
enum ProbeSlot<'a> {
    Borrowed(&'a mut (dyn Probe + Send)),
    Boxed(Box<dyn Probe + Send + 'a>),
}

impl ProbeSlot<'_> {
    fn get(&mut self) -> &mut (dyn Probe + Send) {
        match self {
            ProbeSlot::Borrowed(p) => *p,
            ProbeSlot::Boxed(p) => &mut **p,
        }
    }
}

/// Adapter running the monomorphised solver over a dynamic probe.
struct DynProbe<'a>(&'a mut (dyn Probe + Send));

impl Probe for DynProbe<'_> {
    #[inline]
    fn record(&mut self, event: Event) {
        self.0.record(event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled()
    }

    #[inline]
    fn events_dropped(&self) -> u64 {
        self.0.events_dropped()
    }
}

/// A boxed checkpoint sink as stored by [`SolveRequest::checkpoint_sink`].
type CheckpointSink<'a> = Box<dyn FnMut(&SolverCheckpoint) + Send + 'a>;

/// Probe wrapper materialising [`Event::Checkpoint`] into
/// [`SolverCheckpoint`]s for the request's checkpoint sink. Everything
/// else — including the checkpoint event itself — flows through to the
/// inner probe unchanged, and `enabled()` defers to the inner probe so
/// wrapping never turns on event assembly elsewhere in the solver.
struct CheckpointTap<'s, P: Probe> {
    inner: P,
    sink: &'s mut (dyn FnMut(&SolverCheckpoint) + Send),
    rows: usize,
    cols: usize,
    nnz: usize,
}

impl<P: Probe> Probe for CheckpointTap<'_, P> {
    fn record(&mut self, event: Event) {
        if let Event::Checkpoint {
            next_run,
            core_rows,
            core_cols,
            lower_bound,
            incumbent_cost,
            elapsed_seconds,
            lambda,
            incumbent,
            multicover,
        } = &event
        {
            let ckpt = SolverCheckpoint {
                rows: self.rows,
                cols: self.cols,
                nnz: self.nnz,
                multicover: *multicover,
                core_rows: *core_rows,
                core_cols: *core_cols,
                lambda: lambda.clone(),
                lower_bound: *lower_bound,
                incumbent: incumbent
                    .as_ref()
                    .map(|cols| cols.iter().map(|&c| c as usize).collect()),
                incumbent_cost: *incumbent_cost,
                next_run: *next_run,
                elapsed_seconds: *elapsed_seconds,
            };
            (self.sink)(&ckpt);
        }
        self.inner.record(event);
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    #[inline]
    fn events_dropped(&self) -> u64 {
        self.inner.events_dropped()
    }
}

/// One fully-described solve: instance, options, deadline, seed, probe
/// and cancellation — the single argument of [`Scg::run`].
///
/// Build with [`SolveRequest::for_matrix`] (borrowing) or
/// [`SolveRequest::for_shared`] (owning, `Send + 'static`), then chain
/// the builder methods:
///
/// ```
/// use cover::CoverMatrix;
/// use std::time::Duration;
/// use ucp_core::{Preset, Scg, SolveRequest};
/// use ucp_telemetry::RecordingProbe;
///
/// let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
/// let mut probe = RecordingProbe::new();
/// let req = SolveRequest::for_matrix(&m)
///     .preset(Preset::Fast)
///     .workers(2)
///     .seed(7)
///     .deadline(Duration::from_secs(5))
///     .probe(&mut probe);
/// let out = Scg::run(req).unwrap();
/// assert_eq!(out.cost, 2.0);
/// assert!(!probe.events().is_empty());
/// ```
pub struct SolveRequest<'a> {
    matrix: MatrixSource<'a>,
    options: ScgOptions,
    constraints: Constraints,
    cancel: Option<CancelFlag>,
    probe: Option<ProbeSlot<'a>>,
    resume: Option<Box<SolverCheckpoint>>,
    ckpt_sink: Option<CheckpointSink<'a>>,
}

impl<'a> SolveRequest<'a> {
    /// A request borrowing `m`, with [`Preset::Paper`] options.
    pub fn for_matrix(m: &'a CoverMatrix) -> Self {
        SolveRequest {
            matrix: MatrixSource::Borrowed(m),
            options: ScgOptions::default(),
            constraints: Constraints::new(),
            cancel: None,
            probe: None,
            resume: None,
            ckpt_sink: None,
        }
    }

    /// A request owning its matrix through an `Arc`. With a boxed (or
    /// no) probe the result is `Send + 'static` — the form
    /// `ucp_engine::Engine::submit` requires.
    pub fn for_shared(m: Arc<CoverMatrix>) -> Self {
        SolveRequest {
            matrix: MatrixSource::Shared(m),
            options: ScgOptions::default(),
            constraints: Constraints::new(),
            cancel: None,
            probe: None,
            resume: None,
            ckpt_sink: None,
        }
    }

    /// Replaces the whole option set. Call before the per-field
    /// builders below, which edit the current set.
    pub fn options(mut self, options: ScgOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the option set with a named [`Preset`]'s.
    pub fn preset(self, preset: Preset) -> Self {
        self.options(preset.options())
    }

    /// Per-row coverage requirements `b_i` (set multicover, `Ap ≥ b`):
    /// one entry per row, each `≥ 1`. Unset — or all ones — is the unate
    /// problem and solves bit-identically to a request without coverage.
    /// Validated against the instance by [`Scg::run`] before any solving
    /// starts; a malformed or unmeetable vector fails the request with
    /// [`SolveError::InvalidConstraints`].
    pub fn coverage(mut self, coverage: Vec<u32>) -> Self {
        self.constraints = self.constraints.coverage(coverage);
        self
    }

    /// GUB constraints: disjoint column groups with an at-most-`k`
    /// selection bound each. Validated against the instance by
    /// [`Scg::run`] — overlapping groups, empty groups, zero bounds and
    /// out-of-range columns fail with
    /// [`SolveError::InvalidConstraints`].
    pub fn gub_groups(mut self, groups: Vec<GubGroup>) -> Self {
        self.constraints = self.constraints.gub_groups(groups);
        self
    }

    /// Replaces the whole constraint set (coverage and groups together).
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// The request's constraint set.
    pub fn constraint_set(&self) -> &Constraints {
        &self.constraints
    }

    /// Worker threads for the restarts stage (`0` = all cores). The
    /// answer is identical for every value — see [`crate::restart`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = workers;
        self
    }

    /// RNG seed for the stochastic restarts.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// ZDD kernel tunables for the implicit-reduction phase (unique
    /// table and computed-cache sizing, GC schedule). Overrides whatever
    /// the preset selected. Kernel settings never change the solver's
    /// answer — only speed and memory.
    pub fn kernel(mut self, kernel: ZddOptions) -> Self {
        self.options.core.kernel = kernel;
        self
    }

    /// Trace-sampling stride for `SubgradientIter` events: emit one event
    /// every `n` ascent iterations instead of all of them (`0`/`1` =
    /// every iteration, the historical behaviour). Sampled ascents still
    /// emit the first, every lower-bound-improving and the final
    /// iteration, so convergence plots and iteration counts derived from
    /// the trace stay exact. Long subgradient phases emit thousands of
    /// iteration events per solve; a stride of 10–100 shrinks traces by
    /// roughly that factor without losing the envelope.
    pub fn trace_every(mut self, n: usize) -> Self {
        self.options.subgradient.trace_every = n;
        self
    }

    /// Wall-clock budget for the whole solve (one deadline spanning all
    /// partition blocks and restarts). `ucp-engine` measures this
    /// budget from *submission*, so queue time counts against it.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.options.time_limit = Some(budget);
        self
    }

    /// Attaches a borrowed telemetry probe.
    ///
    /// The probe receives `PhaseBegin`/`PhaseEnd` pairs for every phase
    /// of Fig. 2, one `SubgradientIter` per ascent iteration, a
    /// `ZddKernel` counter snapshot after the implicit phase, and —
    /// inside the constructive runs — `RestartBegin`/`RestartEnd`,
    /// `ColumnFix` and `PenaltyElim` events. With `workers > 1`,
    /// per-worker buffers are replayed into this probe in restart order
    /// after the pool joins, so a parallel trace reads like a
    /// sequential one apart from the `worker` tags.
    pub fn probe<P: Probe + Send>(mut self, probe: &'a mut P) -> Self {
        self.probe = Some(ProbeSlot::Borrowed(probe));
        self
    }

    /// Attaches an owned telemetry sink — the form engine jobs use,
    /// since their requests outlive the submitting scope.
    pub fn trace_sink(mut self, sink: Box<dyn Probe + Send + 'a>) -> Self {
        self.probe = Some(ProbeSlot::Boxed(sink));
        self
    }

    /// Emits a [`SolverCheckpoint`] after the initial subgradient ascent
    /// and then after every `n`th constructive run (`0` = never, the
    /// default). Checkpoints travel as [`Event::Checkpoint`] through the
    /// request's probe and, when set, the
    /// [`checkpoint_sink`](Self::checkpoint_sink) callback. With `n = 0` the solve is
    /// bit-identical to one without checkpointing.
    ///
    /// Checkpoints are emitted on the serial single-core unate path and
    /// the multicover path; partitioned and pooled solves run without
    /// them (resuming still works for pooled unate solves).
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.options.checkpoint_every = n;
        self
    }

    /// Receives every emitted [`SolverCheckpoint`] as a typed value —
    /// the form durable schedulers persist. Requires
    /// [`checkpoint_every`](Self::checkpoint_every) to be non-zero for
    /// anything to arrive.
    pub fn checkpoint_sink<F>(mut self, sink: F) -> Self
    where
        F: FnMut(&SolverCheckpoint) + Send + 'a,
    {
        self.ckpt_sink = Some(Box::new(sink));
        self
    }

    /// Warm-starts the solve from a previously captured checkpoint.
    ///
    /// The checkpoint must [`match`](SolverCheckpoint::matches) the
    /// request's instance and constraint path, and its core shape must
    /// agree with what the deterministic reductions reproduce; a
    /// non-matching checkpoint is ignored and the solve runs cold (the
    /// outcome's [`resumed`](crate::ScgOutcome::resumed) count stays 0).
    /// A valid resume skips the already-executed constructive runs and
    /// reaches a final cost no worse than the uninterrupted solve.
    pub fn resume_from(mut self, ckpt: SolverCheckpoint) -> Self {
        self.resume = Some(Box::new(ckpt));
        self
    }

    /// Attaches a cancellation flag (a clone of `flag`; trip any clone
    /// to abort).
    pub fn cancel(mut self, flag: &CancelFlag) -> Self {
        self.cancel = Some(flag.clone());
        self
    }

    /// The request's cancellation flag, creating one if absent — how
    /// the engine guarantees every queued job is cancellable.
    pub fn cancel_flag(&mut self) -> CancelFlag {
        self.cancel.get_or_insert_with(CancelFlag::new).clone()
    }

    /// The instance this request solves.
    pub fn matrix(&self) -> &CoverMatrix {
        self.matrix.get()
    }

    /// The shared handle behind a [`SolveRequest::for_shared`] request
    /// (`None` for borrowing requests) — lets a scheduler rebuild a
    /// follow-up request for the same instance without cloning it.
    pub fn shared_matrix(&self) -> Option<Arc<CoverMatrix>> {
        match &self.matrix {
            MatrixSource::Borrowed(_) => None,
            MatrixSource::Shared(m) => Some(Arc::clone(m)),
        }
    }

    /// The current option set.
    pub fn opts(&self) -> &ScgOptions {
        &self.options
    }

    /// `true` once the request's cancel flag (if any) has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }
}

impl std::fmt::Debug for SolveRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveRequest")
            .field("rows", &self.matrix().num_rows())
            .field("cols", &self.matrix().num_cols())
            .field("options", &self.options)
            .field("kind", &self.constraints.kind())
            .field("cancellable", &self.cancel.is_some())
            .field("probed", &self.probe.is_some())
            .field("resumed", &self.resume.is_some())
            .finish()
    }
}

impl Scg {
    /// Runs the solve described by `req` — the unified entrypoint
    /// subsuming the deprecated `solve`, `solve_with_probe`,
    /// `solve_parallel` and `solve_parallel_with_probe`.
    ///
    /// The request's options are authoritative: presets, worker count,
    /// seed and deadline all travel inside it, so a request fully
    /// reproduces its solve.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Cancelled`] when the request carries a
    ///   [`CancelFlag`] that tripped before or during the solve.
    /// * [`SolveError::Expired`] when the deadline passed before the
    ///   reduction stage produced anything to return.
    /// * [`SolveError::ResourceExhausted`] when the kernel's node budget
    ///   tripped with [`cover::CoreOptions::degrade`] disabled.
    ///
    /// A request without a flag, deadline or node budget cannot fail.
    ///
    /// # Example
    ///
    /// ```
    /// use cover::CoverMatrix;
    /// use ucp_core::{Preset, Scg, SolveRequest};
    ///
    /// let m = CoverMatrix::from_rows(
    ///     5,
    ///     vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
    /// );
    /// let out = Scg::run(SolveRequest::for_matrix(&m).preset(Preset::Paper)).unwrap();
    /// assert_eq!(out.cost, 3.0);
    /// assert!(out.proven_optimal);
    /// ```
    pub fn run(req: SolveRequest<'_>) -> Result<ScgOutcome, SolveError> {
        let SolveRequest {
            matrix,
            options,
            constraints,
            cancel,
            mut probe,
            resume,
            mut ckpt_sink,
        } = req;
        let solver = Scg::new(options);
        let m = matrix.get();
        let cancel_ref = cancel.as_ref();
        // Refuse cancelled requests up front so a job cancelled while
        // queued never starts reducing at all.
        if cancel_ref.is_some_and(CancelFlag::is_cancelled) {
            return Err(SolveError::Cancelled);
        }
        // Constraints are checked before any solving: a malformed or
        // infeasible-by-construction spec fails typed, not mid-solve.
        // All-ones coverage with no groups is the unate problem and takes
        // the unate path bit-for-bit.
        if constraints != Constraints::default() {
            constraints.validate_for(m)?;
        }
        let unate = constraints.is_unate();
        let resume_ref = resume.as_deref();
        // Monomorphised dispatch over one generic probe: requests
        // without a probe or sink keep the zero-cost NoopProbe path.
        fn go<P: Probe>(
            solver: &Scg,
            m: &CoverMatrix,
            constraints: &Constraints,
            unate: bool,
            cancel: Option<&CancelFlag>,
            resume: Option<&SolverCheckpoint>,
            probe: &mut P,
        ) -> Result<ScgOutcome, SolveError> {
            if unate {
                solver.solve_impl(m, cancel, resume, probe)
            } else {
                solver.solve_multicover_impl(m, constraints, cancel, resume, probe)
            }
        }
        let (out, dropped) = match (probe.as_mut(), ckpt_sink.as_mut()) {
            (Some(slot), Some(sink)) => {
                let mut tap = CheckpointTap {
                    inner: DynProbe(slot.get()),
                    sink: &mut **sink,
                    rows: m.num_rows(),
                    cols: m.num_cols(),
                    nnz: m.nnz(),
                };
                let out = go(
                    &solver,
                    m,
                    &constraints,
                    unate,
                    cancel_ref,
                    resume_ref,
                    &mut tap,
                );
                (out, slot.get().events_dropped())
            }
            (Some(slot), None) => {
                let mut dyn_probe = DynProbe(slot.get());
                let out = go(
                    &solver,
                    m,
                    &constraints,
                    unate,
                    cancel_ref,
                    resume_ref,
                    &mut dyn_probe,
                );
                (out, slot.get().events_dropped())
            }
            (None, Some(sink)) => {
                let mut tap = CheckpointTap {
                    inner: NoopProbe,
                    sink: &mut **sink,
                    rows: m.num_rows(),
                    cols: m.num_cols(),
                    nnz: m.nnz(),
                };
                let out = go(
                    &solver,
                    m,
                    &constraints,
                    unate,
                    cancel_ref,
                    resume_ref,
                    &mut tap,
                );
                (out, 0)
            }
            (None, None) => {
                let out = go(
                    &solver,
                    m,
                    &constraints,
                    unate,
                    cancel_ref,
                    resume_ref,
                    &mut NoopProbe,
                );
                (out, 0)
            }
        };
        let mut out = out?;
        if cancel_ref.is_some_and(CancelFlag::is_cancelled) {
            return Err(SolveError::Cancelled);
        }
        out.dropped_events = dropped;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use ucp_telemetry::RecordingProbe;

    fn cycle(n: usize) -> CoverMatrix {
        CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
    }

    #[cfg(feature = "legacy-api")]
    #[test]
    fn run_matches_deprecated_solve() {
        let m = cycle(9);
        #[allow(deprecated)]
        let old = Scg::with_defaults().solve(&m);
        let new = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
        assert_eq!(old.cost, new.cost);
        assert_eq!(old.solution.cols(), new.solution.cols());
        assert_eq!(old.lower_bound, new.lower_bound);
    }

    #[test]
    fn preset_paper_is_the_default_options() {
        let paper = Preset::Paper.options();
        let dflt = ScgOptions::default();
        assert_eq!(paper.num_iter, dflt.num_iter);
        assert_eq!(paper.alpha, dflt.alpha);
        assert_eq!(paper.subgradient.max_iters, dflt.subgradient.max_iters);
    }

    #[test]
    fn presets_parse_and_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(p.name().parse::<Preset>().unwrap(), p);
        }
        assert!("warp".parse::<Preset>().is_err());
        assert_eq!("default".parse::<Preset>().unwrap(), Preset::Paper);
    }

    #[test]
    fn presets_select_kernel_tunables() {
        let fast = Preset::Fast.options().core.kernel;
        let paper = Preset::Paper.options().core.kernel;
        let thorough = Preset::Thorough.options().core.kernel;
        assert_eq!(paper, ZddOptions::default());
        assert!(fast.get_cache_capacity() < paper.get_cache_capacity());
        assert!(paper.get_cache_capacity() < thorough.get_cache_capacity());
        assert!(fast.get_gc_threshold() < thorough.get_gc_threshold());
    }

    #[test]
    fn kernel_builder_overrides_preset_choice() {
        let m = cycle(5);
        let kernel = ZddOptions::new().cache_capacity(1 << 9).auto_gc(false);
        let req = SolveRequest::for_matrix(&m)
            .preset(Preset::Fast)
            .kernel(kernel);
        assert_eq!(req.opts().core.kernel, kernel);
    }

    #[test]
    fn kernel_tunables_do_not_change_the_answer() {
        let m = cycle(9);
        let reference = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
        for kernel in [
            ZddOptions::new().unique_capacity(1).cache_capacity(1),
            ZddOptions::new().gc_threshold(4).gc_ratio(1.1),
            Preset::Thorough.options().core.kernel,
        ] {
            let out = Scg::run(SolveRequest::for_matrix(&m).kernel(kernel)).unwrap();
            assert_eq!(out.cost, reference.cost);
            assert_eq!(out.solution.cols(), reference.solution.cols());
            assert_eq!(out.lower_bound, reference.lower_bound);
        }
    }

    #[test]
    fn preset_effort_is_ordered() {
        assert!(Preset::Fast.options().num_iter < Preset::Paper.options().num_iter);
        assert!(Preset::Paper.options().num_iter < Preset::Thorough.options().num_iter);
        assert!(
            Preset::Fast.options().subgradient.max_iters
                < Preset::Thorough.options().subgradient.max_iters
        );
    }

    #[test]
    fn builder_fields_reach_the_options() {
        let m = cycle(5);
        let req = SolveRequest::for_matrix(&m)
            .preset(Preset::Fast)
            .workers(3)
            .seed(99)
            .deadline(Duration::from_secs(9));
        assert_eq!(req.opts().workers, 3);
        assert_eq!(req.opts().seed, 99);
        assert_eq!(req.opts().time_limit, Some(Duration::from_secs(9)));
        assert_eq!(req.opts().num_iter, Preset::Fast.options().num_iter);
    }

    #[test]
    fn trace_every_reaches_the_subgradient_options() {
        let m = cycle(5);
        let req = SolveRequest::for_matrix(&m)
            .preset(Preset::Fast)
            .trace_every(50);
        assert_eq!(req.opts().subgradient.trace_every, 50);
        assert_eq!(
            SolveRequest::for_matrix(&m).opts().subgradient.trace_every,
            1,
            "default stays dense"
        );
    }

    #[test]
    fn pre_cancelled_request_never_solves() {
        let m = cycle(7);
        let flag = CancelFlag::new();
        flag.cancel();
        let err = Scg::run(SolveRequest::for_matrix(&m).cancel(&flag)).unwrap_err();
        assert_eq!(err, SolveError::Cancelled);
    }

    #[test]
    fn mid_run_cancellation_aborts_the_solve() {
        // STS(9): the Lagrangian bound (3) sits strictly below the
        // optimum (5), so restarts never certify and this schedule
        // would otherwise grind through millions of runs.
        let m = CoverMatrix::from_rows(
            9,
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![6, 7, 8],
                vec![0, 3, 6],
                vec![1, 4, 7],
                vec![2, 5, 8],
                vec![0, 4, 8],
                vec![1, 5, 6],
                vec![2, 3, 7],
                vec![0, 5, 7],
                vec![1, 3, 8],
                vec![2, 4, 6],
            ],
        );
        let flag = CancelFlag::new();
        let tripper = flag.clone();
        let start = std::time::Instant::now();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tripper.cancel();
        });
        let opts = ScgOptions {
            num_iter: 5_000_000,
            ..ScgOptions::default()
        };
        let err = Scg::run(SolveRequest::for_matrix(&m).options(opts).cancel(&flag)).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err, SolveError::Cancelled);
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "cancellation failed to interrupt the restart schedule"
        );
    }

    #[test]
    fn uncancelled_flag_does_not_interfere() {
        let m = cycle(7);
        let flag = CancelFlag::new();
        let out = Scg::run(SolveRequest::for_matrix(&m).cancel(&flag)).unwrap();
        assert!(out.solution.is_feasible(&m));
    }

    #[test]
    fn probed_run_records_events() {
        let m = cycle(7);
        let mut probe = RecordingProbe::new();
        let out = Scg::run(SolveRequest::for_matrix(&m).probe(&mut probe)).unwrap();
        assert!(out.solution.is_feasible(&m));
        assert!(!probe.events().is_empty());
        assert!(probe.unbalanced_phases().is_empty());
    }

    #[test]
    fn shared_matrix_request_is_send_and_static() {
        fn assert_send<T: Send + 'static>(_: &T) {}
        let m = Arc::new(cycle(5));
        let req = SolveRequest::for_shared(Arc::clone(&m)).preset(Preset::Fast);
        assert_send(&req);
        let out = Scg::run(req).unwrap();
        assert_eq!(out.cost, 3.0);
    }

    #[test]
    fn trace_sink_receives_events() {
        struct CountProbe(Arc<std::sync::atomic::AtomicUsize>);
        impl Probe for CountProbe {
            fn record(&mut self, _: Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let m = cycle(7);
        let n = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let sink = Box::new(CountProbe(Arc::clone(&n)));
        Scg::run(SolveRequest::for_shared(Arc::new(m)).trace_sink(sink)).unwrap();
        assert!(n.load(Ordering::Relaxed) > 0);
    }
}
