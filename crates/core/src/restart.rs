//! The shared-core parallel restart engine.
//!
//! [`Scg::run`](crate::Scg::run) runs in two
//! stages. The *reduce* stage — implicit + explicit reductions,
//! partitioning and the initial subgradient ascent — is deterministic and
//! runs exactly once per solve, whatever the worker count. The *restarts*
//! stage then schedules the paper's `NumIter` randomised constructive runs
//! over a scoped worker pool; this module holds the pieces that stage
//! shares between workers.
//!
//! # Determinism contract
//!
//! The engine promises that a solve's **cost and solution are identical
//! for every worker count and thread schedule** (given a seed and no
//! `time_limit`). That promise shapes the design:
//!
//! * Every restart is a pure function of the reduced core, the initial
//!   ascent and its own seed ([`restart_seed`], a SplitMix64 derivation):
//!   its constructive path never reads concurrent state. In particular a
//!   restart's Lagrangian pruning bound is `min(initial incumbent, its own
//!   offers so far)` — *not* the shared best. Using the shared best to
//!   shape the path looks like a harmless strengthening but is unsound for
//!   determinism: penalty tests and the warm-started ascents all take the
//!   bound as input, so the whole trajectory would depend on which worker
//!   finished first. It is also unsound to *abandon* a restart merely
//!   because the shared best undercuts its branch bound: the final
//!   irredundancy strip can drop a cover below `chosen + LB(residual)`, so
//!   a "dominated" branch can still produce the winning cover.
//! * The winner is the offer minimising `(cost, restart index)` — a total
//!   order independent of arrival order, maintained by `SharedIncumbent`.
//! * Workers do prune against each other's best where it is provably safe:
//!   once any restart's cover reaches the core's bound floor
//!   (`cost ≤ ⌈LB⌉`, the certification condition), no later-indexed
//!   restart can win the selection — every cover costs at least the floor
//!   and ties lose by index. `SharedIncumbent::certify` publishes the
//!   smallest such index; restarts above it stop, mid-run.
//!
//! A `time_limit` deadline is also checked mid-run; it trades the
//! determinism promise for budget adherence, which is what a wall-clock
//! budget asks for.

use cover::{CoverMatrix, Halt, Solution};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use ucp_telemetry::{Event, Probe};

/// The SplitMix64 output function: maps `state` to a well-mixed 64-bit
/// value. Passing consecutive states yields the reference SplitMix64
/// stream (`splitmix64(0)` is the stream's first output for seed 0).
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG seed for constructive restart `restart` (1-based) of a solve
/// seeded with `seed`.
///
/// The previous scheme, `seed.wrapping_add(k)`, made worker `k` of seed
/// `s` collide with worker `k−1` of seed `s+1` and kept the underlying
/// generator streams adjacent. Hashing through SplitMix64 decorrelates
/// both: nearby `(seed, restart)` pairs land on unrelated seeds.
pub fn restart_seed(seed: u64, restart: usize) -> u64 {
    splitmix64(splitmix64(seed).wrapping_add(restart as u64))
}

/// The best core-level cover found so far, shared by all restart workers
/// of one core.
///
/// Selection is by `(cost, restart index)` — lowest cost first, ties to
/// the lowest restart — so the final winner does not depend on the order
/// in which concurrent offers arrive. Index 0 is reserved for the initial
/// ascent's heuristic cover.
pub(crate) struct SharedIncumbent {
    best: Mutex<BestEntry>,
    /// Smallest restart index whose cover reached the core's bound floor
    /// (`usize::MAX` until that happens). Restarts with a larger index
    /// cannot win the selection and stop early.
    stop_at: AtomicUsize,
}

struct BestEntry {
    cost: f64,
    restart: usize,
    solution: Option<Solution>,
}

impl SharedIncumbent {
    pub fn new() -> Self {
        SharedIncumbent {
            best: Mutex::new(BestEntry {
                cost: f64::INFINITY,
                restart: usize::MAX,
                solution: None,
            }),
            stop_at: AtomicUsize::new(usize::MAX),
        }
    }

    /// Offers a candidate cover of `ae` from `restart`; returns its
    /// irredundant cost. The incumbent updates when the offer precedes
    /// the current best in `(cost, restart)` order.
    pub fn offer(&self, ae: &CoverMatrix, mut sol: Solution, restart: usize) -> f64 {
        sol.make_irredundant(ae);
        let cost = sol.cost(ae);
        let mut g = self.best.lock().expect("incumbent lock");
        if cost < g.cost || (cost == g.cost && restart < g.restart) {
            g.cost = cost;
            g.restart = restart;
            g.solution = Some(sol);
        }
        cost
    }

    /// Current best cost (`+∞` before any offer).
    pub fn best_cost(&self) -> f64 {
        self.best.lock().expect("incumbent lock").cost
    }

    /// Records that `restart` reached the bound floor.
    pub fn certify(&self, restart: usize) {
        self.stop_at.fetch_min(restart, Ordering::SeqCst);
    }

    /// `true` when a restart with a smaller index already reached the
    /// bound floor — `restart`'s offers can no longer win the selection.
    pub fn superseded(&self, restart: usize) -> bool {
        self.stop_at.load(Ordering::SeqCst) < restart
    }

    /// Snapshot of the current `(cost, solution)` — how checkpoints read
    /// the incumbent without consuming it.
    pub fn best(&self) -> (f64, Option<Solution>) {
        let g = self.best.lock().expect("incumbent lock");
        (g.cost, g.solution.clone())
    }

    /// Consumes the incumbent, returning the winning `(cost, solution)`.
    pub fn into_best(self) -> (f64, Option<Solution>) {
        let g = self.best.into_inner().expect("incumbent lock");
        (g.cost, g.solution)
    }
}

/// Everything one constructive restart needs to cooperate with its
/// siblings without compromising determinism (see the module docs).
pub(crate) struct RestartCtx<'a> {
    pub incumbent: &'a SharedIncumbent,
    /// This restart's 1-based index.
    pub restart: usize,
    /// Cost of the initial ascent's heuristic cover (`+∞` if none): the
    /// deterministic base of the restart's pruning bound.
    pub base_ub: f64,
    /// The core's lower bound (`⌈LB⌉` under integer costs): any cover
    /// reaching it is optimal and stops the whole restart stage.
    pub core_lb: f64,
    /// Shared halt condition (one per solve, spanning all partition
    /// blocks and restarts).
    pub halt: &'a Halt,
}

impl RestartCtx<'_> {
    /// The deterministic pruning bound: best of the initial incumbent and
    /// this restart's own offers — never the shared best.
    pub fn path_ub(&self, own_best: f64) -> f64 {
        self.base_ub.min(own_best)
    }

    /// Offers a cover to the shared incumbent, returning its irredundant
    /// cost, and publishes the early-stop index when it reaches the bound
    /// floor.
    pub fn offer(&self, ae: &CoverMatrix, sol: Solution) -> f64 {
        let cost = self.incumbent.offer(ae, sol, self.restart);
        if cost <= self.core_lb + 1e-9 {
            self.incumbent.certify(self.restart);
        }
        cost
    }

    /// `true` when the restart should stop mid-run: a lower-indexed
    /// sibling reached the bound floor, or the solve's halt condition
    /// (deadline or cancellation) fired.
    pub fn should_abort(&self) -> bool {
        self.incumbent.superseded(self.restart) || self.halt.reached()
    }
}

/// A [`Probe`] that buffers events in memory on a worker thread; the
/// solve's real probe replays the buffers in restart order afterwards, so
/// traces stay ordered and the user probe never crosses threads.
pub(crate) struct BufferProbe {
    enabled: bool,
    events: Vec<Event>,
}

impl BufferProbe {
    /// `enabled = false` (the real probe is a no-op) skips buffering.
    pub fn new(enabled: bool) -> Self {
        BufferProbe {
            enabled,
            events: Vec::new(),
        }
    }

    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Probe for BufferProbe {
    #[inline]
    fn record(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_stream() {
        // First three outputs of the reference SplitMix64 for seed 0
        // (whose internal state advances by the golden gamma per draw).
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(GAMMA), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(GAMMA.wrapping_mul(2)), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn restart_seeds_do_not_collide_across_adjacent_user_seeds() {
        // The old scheme had seed s, restart k ≡ seed s+1, restart k−1.
        for s in [0u64, 1, 42, 0xDA7E_2000] {
            for k in 1usize..=8 {
                assert_ne!(restart_seed(s, k), restart_seed(s + 1, k.saturating_sub(1)));
                assert_ne!(restart_seed(s, k), restart_seed(s, k + 1));
            }
        }
    }

    #[test]
    fn incumbent_selects_by_cost_then_restart_index() {
        // Two rows, two interchangeable unit-cost covers for each: every
        // 2-column cover ties at cost 2, so only the index tiebreak moves.
        let m = CoverMatrix::from_rows(4, vec![vec![0, 1], vec![2, 3]]);
        let inc = SharedIncumbent::new();
        inc.offer(&m, Solution::from_cols(vec![0, 2]), 3);
        assert_eq!(inc.best_cost(), 2.0);
        // Restart 1 ties on cost: the tie must go to the lower index
        // regardless of arrival order…
        inc.offer(&m, Solution::from_cols(vec![1, 3]), 1);
        // …and a later tie from a higher index changes nothing.
        inc.offer(&m, Solution::from_cols(vec![0, 3]), 2);
        let (cost, sol) = inc.into_best();
        assert_eq!(cost, 2.0);
        let mut cols = sol.expect("offers were made").cols().to_vec();
        cols.sort_unstable();
        assert_eq!(cols, vec![1, 3]);
    }

    #[test]
    fn incumbent_prefers_cheaper_cover_from_any_index() {
        let m = CoverMatrix::from_rows(3, vec![vec![0, 2], vec![1, 2]]);
        let inc = SharedIncumbent::new();
        inc.offer(&m, Solution::from_cols(vec![0, 1]), 1);
        assert_eq!(inc.best_cost(), 2.0);
        // Column 2 alone covers both rows: cost 1 wins despite the index.
        inc.offer(&m, Solution::from_cols(vec![2]), 4);
        assert_eq!(inc.best_cost(), 1.0);
    }

    #[test]
    fn certification_stops_later_restarts_only() {
        let inc = SharedIncumbent::new();
        assert!(!inc.superseded(5));
        inc.certify(3);
        assert!(inc.superseded(5));
        assert!(!inc.superseded(3), "the certifying restart itself finishes");
        assert!(!inc.superseded(2), "lower restarts keep running");
        inc.certify(7); // a later certification never loosens the stop
        assert!(inc.superseded(4));
    }

    #[test]
    fn buffer_probe_respects_enablement() {
        let mut on = BufferProbe::new(true);
        let mut off = BufferProbe::new(false);
        for p in [&mut on, &mut off] {
            p.record(Event::RestartBegin { run: 1, worker: 0 });
        }
        assert_eq!(on.into_events().len(), 1);
        assert!(off.into_events().is_empty());
    }
}
