//! The `ZDD_SCG` constructive driver (Fig. 2 of the paper).
//!
//! Flow: implicit + explicit reductions to the cyclic core → subgradient
//! ascent → (if not proven optimal) `NumIter` constructive runs, each
//! repeatedly *fixing* columns — the provably-optimal ones from penalty
//! tests, the "promising" ones from the §3.7 thresholds, and always one
//! best-rated column by `σ_j = c̃_j − α·μ_j` (randomised among the top
//! `BestCol` in the restarts) — then re-reducing and re-running the
//! subgradient, until the residual matrix empties or the local bound proves
//! no improvement is possible. Finally redundant columns are stripped.

use crate::dual::dual_ascent;
use crate::penalty::{dual_penalties, lagrangian_penalties};
use crate::subgradient::{subgradient_ascent_probed, SubgradientOptions, SubgradientResult};
use cover::{cyclic_core_probed, CoreOptions, CoverMatrix, Reducer, Solution};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};
use ucp_telemetry::{Event, FixReason, NoopProbe, PenaltyKind, Phase, PhaseTimes, Probe};

/// All tunables of the `ZDD_SCG` solver. Field defaults are the paper's
/// published values where given.
#[derive(Clone, Copy, Debug)]
pub struct ScgOptions {
    /// Cyclic-core computation options (`MaxR`, `MaxC`, implicit on/off).
    pub core: CoreOptions,
    /// Subgradient-phase tunables.
    pub subgradient: SubgradientOptions,
    /// `NumIter`: number of constructive runs (first deterministic, rest
    /// randomised).
    pub num_iter: usize,
    /// `BestCol` for restart `k` (1-based, `k ≥ 2`) is
    /// `min(1 + (k − 1) · best_col_growth, 16)`.
    pub best_col_growth: usize,
    /// `α` in the rating `σ_j = c̃_j − α·μ_j` (paper: 2).
    pub alpha: f64,
    /// `ĉ`: fix columns with Lagrangian cost at most this (paper: 0.001)…
    pub fix_cost_threshold: f64,
    /// …and dual-Lagrangian multiplier at least this (`μ̂`, paper: 0.999).
    pub fix_mu_threshold: f64,
    /// `DualPen`: run dual penalties only when the matrix has at most this
    /// many columns (paper: 100).
    pub dual_pen_limit: usize,
    /// RNG seed for the stochastic restarts.
    pub seed: u64,
    /// Optional overall wall-clock budget: once exceeded, no further
    /// constructive runs start (the current one finishes its round).
    pub time_limit: Option<std::time::Duration>,
    /// Apply the partitioning reduction (§2): disconnected blocks of the
    /// cyclic core are solved independently and their bounds added.
    pub partition: bool,
}

impl Default for ScgOptions {
    fn default() -> Self {
        ScgOptions {
            core: CoreOptions::default(),
            subgradient: SubgradientOptions::default(),
            num_iter: 4,
            best_col_growth: 1,
            alpha: 2.0,
            fix_cost_threshold: 1e-3,
            fix_mu_threshold: 0.999,
            dual_pen_limit: 100,
            seed: 0xDA7E_2000,
            time_limit: None,
            partition: true,
        }
    }
}

impl ScgOptions {
    /// A cheaper preset for tests and very large sweeps: single run,
    /// shorter subgradient phases.
    pub fn fast() -> Self {
        ScgOptions {
            num_iter: 1,
            subgradient: SubgradientOptions {
                max_iters: 120,
                ..SubgradientOptions::default()
            },
            ..ScgOptions::default()
        }
    }
}

/// The result of a [`Scg::solve`] call.
#[derive(Clone, Debug)]
pub struct ScgOutcome {
    /// Best cover found, in original column indices.
    pub solution: Solution,
    /// Its cost (`+∞` when `infeasible`).
    pub cost: f64,
    /// Global lower bound: fixed-column cost plus the core's Lagrangian
    /// bound (rounded up under integer costs).
    pub lower_bound: f64,
    /// `true` when `cost == lower_bound` — the solution is certified optimal.
    pub proven_optimal: bool,
    /// `true` when some row cannot be covered at all.
    pub infeasible: bool,
    /// Constructive runs actually executed (`MaxIter` column of Tables 3–4).
    pub iterations: usize,
    /// Total subgradient iterations across all phases.
    pub subgradient_iterations: usize,
    /// Cyclic-core computation time (`CC(s)` column of Tables 1–2).
    pub cc_time: Duration,
    /// End-to-end solve time (`T(s)` column).
    pub total_time: Duration,
    /// Cyclic-core dimensions after all reductions.
    pub core_rows: usize,
    /// See [`ScgOutcome::core_rows`].
    pub core_cols: usize,
    /// Wall-clock breakdown over the pipeline phases. For sequential solves
    /// `phase_times.total()` closely tracks `total_time`; partitioned solves
    /// accumulate the per-block breakdowns.
    pub phase_times: PhaseTimes,
    /// ZDD manager counters from the implicit reduction phase (merged
    /// across blocks in partitioned solves; all zero when the implicit
    /// phase was disabled).
    pub zdd_stats: cover::ZddStats,
}

impl ScgOutcome {
    /// The relative optimality gap `(cost − LB) / LB` (0 when certified;
    /// `NaN` for infeasible outcomes).
    pub fn gap(&self) -> f64 {
        if self.infeasible {
            f64::NAN
        } else if self.lower_bound <= 0.0 {
            0.0
        } else {
            (self.cost - self.lower_bound).max(0.0) / self.lower_bound
        }
    }
}

/// The `ZDD_SCG` solver.
///
/// # Example
///
/// ```
/// use cover::CoverMatrix;
/// use ucp_core::{Scg, ScgOptions};
///
/// let m = CoverMatrix::from_rows(
///     5,
///     vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
/// );
/// let out = Scg::new(ScgOptions::default()).solve(&m);
/// assert_eq!(out.cost, 3.0);
/// assert!(out.proven_optimal);
/// ```
#[derive(Clone, Debug)]
pub struct Scg {
    opts: ScgOptions,
}

/// Best core-level solution tracker shared across constructive runs.
struct Incumbent {
    solution: Option<Solution>,
    cost: f64,
}

impl Incumbent {
    /// Offers a candidate cover; returns its (irredundant) cost.
    fn offer(&mut self, ae: &CoverMatrix, mut sol: Solution) -> f64 {
        sol.make_irredundant(ae);
        let cost = sol.cost(ae);
        if cost < self.cost {
            self.cost = cost;
            self.solution = Some(sol);
        }
        cost
    }
}

/// What one constructive run spent and produced.
struct RunReport {
    /// Subgradient iterations executed by the run's nested ascents.
    sub_iters: usize,
    /// Wall-clock seconds of those ascents (credited to the subgradient
    /// phase in the breakdown, not to the constructive phase).
    sub_seconds: f64,
    /// Best complete cover cost the run produced (`+∞` if it aborted
    /// without completing one).
    cost: f64,
}

impl Scg {
    /// Creates a solver with the given options.
    pub fn new(opts: ScgOptions) -> Self {
        Scg { opts }
    }

    /// Convenience constructor with default options.
    pub fn with_defaults() -> Self {
        Scg::new(ScgOptions::default())
    }

    /// Solves the unate covering instance `m`.
    pub fn solve(&self, m: &CoverMatrix) -> ScgOutcome {
        self.solve_with_probe(m, &mut NoopProbe)
    }

    /// [`Scg::solve`] with a telemetry probe observing the pipeline.
    ///
    /// The probe receives [`Event::PhaseBegin`]/[`Event::PhaseEnd`] pairs for
    /// every phase of Fig. 2 (implicit and explicit reduction, partitioning,
    /// each subgradient ascent — including the warm-started ones nested in
    /// constructive runs — the constructive phase, and postprocessing), one
    /// [`Event::SubgradientIter`] per ascent iteration, and, inside the
    /// constructive runs, [`Event::RestartBegin`]/[`Event::RestartEnd`],
    /// [`Event::ColumnFix`] and [`Event::PenaltyElim`] events. Column indices
    /// in `ColumnFix` events refer to the cyclic core.
    ///
    /// With [`NoopProbe`] (what [`Scg::solve`] passes) all instrumentation
    /// monomorphises away; the phase wall-clock breakdown in
    /// [`ScgOutcome::phase_times`] is filled in either way.
    pub fn solve_with_probe<P: Probe>(&self, m: &CoverMatrix, probe: &mut P) -> ScgOutcome {
        let start = Instant::now();
        let integer_costs = m.integer_costs();
        let mut phases = PhaseTimes::default();

        // ---- Reductions to the cyclic core (implicit + explicit). ----
        let core_res = cyclic_core_probed(m, &self.opts.core, &mut *probe);
        phases.add(
            Phase::ImplicitReduction,
            core_res.implicit_time.as_secs_f64(),
        );
        phases.add(
            Phase::ExplicitReduction,
            core_res.explicit_time.as_secs_f64(),
        );
        if core_res.infeasible {
            return ScgOutcome {
                solution: Solution::new(),
                cost: f64::INFINITY,
                lower_bound: f64::INFINITY,
                proven_optimal: false,
                infeasible: true,
                iterations: 0,
                subgradient_iterations: 0,
                cc_time: core_res.cc_time,
                total_time: start.elapsed(),
                core_rows: core_res.core.num_rows(),
                core_cols: core_res.core.num_cols(),
                phase_times: phases,
                zdd_stats: core_res.zdd_stats,
            };
        }
        let fixed_cost: f64 = core_res.fixed_cols.iter().map(|&j| m.cost(j)).sum();
        let ae = &core_res.core;

        if core_res.is_solved() {
            let solution = Solution::from_cols(core_res.fixed_cols.clone());
            return ScgOutcome {
                cost: fixed_cost,
                lower_bound: fixed_cost,
                proven_optimal: true,
                infeasible: false,
                iterations: 0,
                subgradient_iterations: 0,
                cc_time: core_res.cc_time,
                total_time: start.elapsed(),
                core_rows: 0,
                core_cols: 0,
                solution,
                phase_times: phases,
                zdd_stats: core_res.zdd_stats,
            };
        }

        // ---- Partitioning (§2): independent blocks solve independently. ----
        if self.opts.partition {
            probe.record(Event::PhaseBegin {
                phase: Phase::Partition,
            });
            let partition_start = Instant::now();
            let blocks = cover::partition(ae);
            let partition_time = partition_start.elapsed().as_secs_f64();
            phases.add(Phase::Partition, partition_time);
            probe.record(Event::PhaseEnd {
                phase: Phase::Partition,
                seconds: partition_time,
            });
            if blocks.len() > 1 {
                return self.solve_blocks(m, &core_res, blocks, start, phases, probe);
            }
        }

        // ---- Initial subgradient phase on the exact cyclic core. ----
        let mut sub_opts = self.opts.subgradient;
        sub_opts.occurrence_heuristic = true;
        probe.record(Event::PhaseBegin {
            phase: Phase::Subgradient,
        });
        let sub_start = Instant::now();
        let sub0 = subgradient_ascent_probed(ae, &sub_opts, None, None, &mut *probe);
        let sub_time = sub_start.elapsed().as_secs_f64();
        phases.add(Phase::Subgradient, sub_time);
        probe.record(Event::PhaseEnd {
            phase: Phase::Subgradient,
            seconds: sub_time,
        });
        let mut sub_iters = sub0.iterations;

        let mut incumbent = Incumbent {
            solution: None,
            cost: f64::INFINITY,
        };
        if let Some(sol) = sub0.best_solution.clone() {
            incumbent.offer(ae, sol);
        }

        let core_lb = if integer_costs {
            sub0.lb_ceil()
        } else {
            sub0.lb
        };
        let global_lb = fixed_cost + core_lb.max(0.0);

        let mut iterations = 0usize;
        if !(integer_costs && incumbent.cost <= core_lb + 1e-9) {
            // ---- NumIter constructive runs. ----
            probe.record(Event::PhaseBegin {
                phase: Phase::Constructive,
            });
            let constructive_start = Instant::now();
            let mut nested_sub_time = 0.0f64;
            let mut rng = StdRng::seed_from_u64(self.opts.seed);
            for iter in 1..=self.opts.num_iter {
                if self
                    .opts
                    .time_limit
                    .is_some_and(|budget| start.elapsed() > budget)
                {
                    break;
                }
                iterations = iter;
                let best_col = if iter == 1 {
                    1
                } else {
                    (1 + (iter - 1) * self.opts.best_col_growth).min(16)
                };
                probe.record(Event::RestartBegin { run: iter });
                let run =
                    self.constructive_run(ae, &sub0, best_col, &mut rng, &mut incumbent, probe);
                sub_iters += run.sub_iters;
                nested_sub_time += run.sub_seconds;
                if probe.enabled() {
                    probe.record(Event::RestartEnd {
                        run: iter,
                        cost: run.cost,
                        best_cost: incumbent.cost,
                    });
                }
                if integer_costs && incumbent.cost <= core_lb + 1e-9 {
                    break;
                }
            }
            // Nested ascents report under Subgradient; the constructive
            // phase keeps only the time spent outside them.
            let constructive_time =
                (constructive_start.elapsed().as_secs_f64() - nested_sub_time).max(0.0);
            phases.add(Phase::Constructive, constructive_time);
            phases.add(Phase::Subgradient, nested_sub_time);
            probe.record(Event::PhaseEnd {
                phase: Phase::Constructive,
                seconds: constructive_time,
            });
        }

        probe.record(Event::PhaseBegin {
            phase: Phase::Postprocess,
        });
        let post_start = Instant::now();
        let solution = match incumbent.solution {
            Some(core_sol) => core_sol.lift(&core_res.col_map, &core_res.fixed_cols),
            None => Solution::from_cols(core_res.fixed_cols.clone()),
        };
        let cost = solution.cost(m);
        let proven_optimal = integer_costs && cost <= global_lb + 1e-9;
        let post_time = post_start.elapsed().as_secs_f64();
        phases.add(Phase::Postprocess, post_time);
        probe.record(Event::PhaseEnd {
            phase: Phase::Postprocess,
            seconds: post_time,
        });
        ScgOutcome {
            solution,
            cost,
            lower_bound: global_lb,
            proven_optimal,
            infeasible: false,
            iterations,
            subgradient_iterations: sub_iters,
            cc_time: core_res.cc_time,
            total_time: start.elapsed(),
            core_rows: ae.num_rows(),
            core_cols: ae.num_cols(),
            phase_times: phases,
            zdd_stats: core_res.zdd_stats,
        }
    }

    /// Solves a partitioned cyclic core block by block and recombines.
    fn solve_blocks<P: Probe>(
        &self,
        m: &CoverMatrix,
        core_res: &cover::CoreResult,
        blocks: Vec<cover::Block>,
        start: Instant,
        mut phases: PhaseTimes,
        probe: &mut P,
    ) -> ScgOutcome {
        let fixed_cost: f64 = core_res.fixed_cols.iter().map(|&j| m.cost(j)).sum();
        let mut solution = Solution::from_cols(core_res.fixed_cols.clone());
        let mut lower_bound = fixed_cost;
        let mut iterations = 0usize;
        let mut sub_iters = 0usize;
        let sub_opts = ScgOptions {
            partition: false, // blocks are connected by construction
            ..self.opts
        };
        let mut zdd_stats = core_res.zdd_stats;
        for block in blocks {
            let sub = Scg::new(sub_opts).solve_with_probe(&block.matrix, &mut *probe);
            phases.merge(&sub.phase_times);
            zdd_stats.merge(&sub.zdd_stats);
            sub_iters += sub.subgradient_iterations;
            iterations = iterations.max(sub.iterations);
            if sub.infeasible {
                return ScgOutcome {
                    solution: Solution::new(),
                    cost: f64::INFINITY,
                    lower_bound: f64::INFINITY,
                    proven_optimal: false,
                    infeasible: true,
                    iterations,
                    subgradient_iterations: sub_iters,
                    cc_time: core_res.cc_time,
                    total_time: start.elapsed(),
                    core_rows: core_res.core.num_rows(),
                    core_cols: core_res.core.num_cols(),
                    phase_times: phases,
                    zdd_stats,
                };
            }
            lower_bound += sub.lower_bound;
            solution.extend(
                sub.solution
                    .cols()
                    .iter()
                    .map(|&j| core_res.col_map[block.col_map[j]]),
            );
        }
        let cost = solution.cost(m);
        let proven_optimal = m.integer_costs() && cost <= lower_bound + 1e-9;
        ScgOutcome {
            solution,
            cost,
            lower_bound,
            proven_optimal,
            infeasible: false,
            iterations,
            subgradient_iterations: sub_iters,
            cc_time: core_res.cc_time,
            total_time: start.elapsed(),
            core_rows: core_res.core.num_rows(),
            core_cols: core_res.core.num_cols(),
            phase_times: phases,
            zdd_stats,
        }
    }

    /// One constructive run over the saved cyclic core `ae`. Updates the
    /// incumbent; reports the subgradient effort spent and the best cover
    /// cost this run produced.
    fn constructive_run<P: Probe>(
        &self,
        ae: &CoverMatrix,
        sub0: &SubgradientResult,
        best_col: usize,
        rng: &mut StdRng,
        incumbent: &mut Incumbent,
        probe: &mut P,
    ) -> RunReport {
        let mut cur = ae.clone();
        // cur column j corresponds to core column cur_to_core[j].
        let mut cur_to_core: Vec<usize> = (0..ae.num_cols()).collect();
        let mut chosen: Vec<usize> = Vec::new(); // core ids
        let mut chosen_cost = 0.0f64;
        let mut lambda = sub0.lambda.clone();
        let mut sub: SubgradientResult = sub0.clone();
        let mut report = RunReport {
            sub_iters: 0,
            sub_seconds: 0.0,
            cost: f64::INFINITY,
        };
        let max_rounds = ae.num_cols() + 2;

        for _round in 0..max_rounds {
            let local_ub = incumbent.cost - chosen_cost;
            // This branch cannot beat the incumbent: stop (the pseudocode's
            // `z_best ≤ ⌈LB⌉` exit).
            if sub.lb >= local_ub - 1e-9 {
                return report;
            }

            // §3.7 promising columns + §3.6 penalties.
            let mut take: Vec<usize> = (0..cur.num_cols())
                .filter(|&j| {
                    sub.c_tilde[j] <= self.opts.fix_cost_threshold
                        && sub.mu[j] >= self.opts.fix_mu_threshold
                })
                .collect();
            // Columns whose fixes were already announced to the probe, in
            // `cur` indices; red.fixed() minus these are Essential events.
            let mut announced = if probe.enabled() {
                for &j in &take {
                    probe.record(Event::ColumnFix {
                        col: cur_to_core[j],
                        sigma: sub.c_tilde[j],
                        mu: sub.mu[j],
                        reason: FixReason::Promising,
                    });
                }
                let mut seen = vec![false; cur.num_cols()];
                for &j in &take {
                    seen[j] = true;
                }
                seen
            } else {
                Vec::new()
            };
            let pen = lagrangian_penalties(&sub.c_tilde, sub.lb, local_ub);
            take.extend(pen.fix_in.iter().copied());
            let mut exclude = pen.fix_out;
            if probe.enabled() && !exclude.is_empty() {
                probe.record(Event::PenaltyElim {
                    kind: PenaltyKind::Lagrangian,
                    removed: exclude.len(),
                });
            }
            if cur.num_cols() <= self.opts.dual_pen_limit {
                let base = dual_ascent(&cur, cur.costs(), Some(&sub.lambda)).m;
                let dpen = dual_penalties(&cur, &base, local_ub);
                if dpen.no_improvement_possible {
                    return report;
                }
                if probe.enabled() && !dpen.fix_out.is_empty() {
                    probe.record(Event::PenaltyElim {
                        kind: PenaltyKind::Dual,
                        removed: dpen.fix_out.len(),
                    });
                }
                take.extend(dpen.fix_in);
                exclude.extend(dpen.fix_out);
            }
            take.sort_unstable();
            take.dedup();
            exclude.sort_unstable();
            exclude.dedup();
            // A column proven both ways means no improvement below the
            // incumbent exists on this branch.
            if take.iter().any(|j| exclude.binary_search(j).is_ok()) {
                return report;
            }

            // The mandatory σ-rated pick (guarantees progress).
            let mut rated: Vec<(f64, usize)> = (0..cur.num_cols())
                .filter(|j| take.binary_search(j).is_err() && exclude.binary_search(j).is_err())
                .map(|j| (sub.c_tilde[j] - self.opts.alpha * sub.mu[j], j))
                .collect();
            rated.sort_by(|a, b| a.partial_cmp(b).expect("σ ratings are finite"));
            if take.is_empty() && rated.is_empty() {
                return report; // everything excluded: dead branch
            }
            if let Some(&(sigma, pick)) = rated.get(if best_col <= 1 || rated.len() <= 1 {
                0
            } else {
                rng.random_range(0..best_col.min(rated.len()))
            }) {
                if probe.enabled() {
                    probe.record(Event::ColumnFix {
                        col: cur_to_core[pick],
                        sigma,
                        mu: sub.mu[pick],
                        reason: FixReason::RatedPick,
                    });
                    announced[pick] = true;
                }
                take.push(pick);
            }

            // Re-reduce with the fixes applied.
            let mut red = Reducer::with_state(&cur, &take, &exclude);
            red.reduce_to_fixpoint();
            if red.infeasible() {
                return report; // exclusions killed the branch: incumbent stands
            }
            for &j in red.fixed() {
                if probe.enabled() && !announced[j] {
                    probe.record(Event::ColumnFix {
                        col: cur_to_core[j],
                        sigma: sub.c_tilde[j],
                        mu: sub.mu[j],
                        reason: FixReason::Essential,
                    });
                }
                chosen.push(cur_to_core[j]);
                chosen_cost += cur.cost(j);
            }
            let (next, row_map, col_map) = red.extract_core();
            lambda = row_map.iter().map(|&i| lambda[i]).collect();
            cur_to_core = col_map.iter().map(|&j| cur_to_core[j]).collect();
            cur = next;

            if cur.num_rows() == 0 {
                let offered = incumbent.offer(ae, Solution::from_cols(chosen));
                report.cost = report.cost.min(offered);
                return report;
            }

            // Subgradient on the reduced matrix, warm-started. The ascent
            // reports its own begin/end pair so traces show nested phases;
            // its seconds are credited to Subgradient, not Constructive.
            let mut sopts = self.opts.subgradient;
            sopts.occurrence_heuristic = false;
            probe.record(Event::PhaseBegin {
                phase: Phase::Subgradient,
            });
            let ascent_start = Instant::now();
            sub =
                subgradient_ascent_probed(&cur, &sopts, Some(&lambda), Some(local_ub), &mut *probe);
            let ascent_seconds = ascent_start.elapsed().as_secs_f64();
            report.sub_seconds += ascent_seconds;
            probe.record(Event::PhaseEnd {
                phase: Phase::Subgradient,
                seconds: ascent_seconds,
            });
            report.sub_iters += sub.iterations;
            lambda = sub.lambda.clone();
            if let Some(part) = &sub.best_solution {
                let mut full = Solution::from_cols(chosen.clone());
                full.extend(part.cols().iter().map(|&j| cur_to_core[j]));
                let offered = incumbent.offer(ae, full);
                report.cost = report.cost.min(offered);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> CoverMatrix {
        CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
    }

    #[test]
    fn solves_cycles_optimally() {
        for n in [5usize, 7, 9, 11] {
            let m = cycle(n);
            let out = Scg::with_defaults().solve(&m);
            assert!(out.solution.is_feasible(&m));
            assert_eq!(out.cost, (n / 2 + 1) as f64, "C{n}");
            assert!(out.proven_optimal, "C{n} not certified");
        }
    }

    #[test]
    fn reductions_alone_solve_trees() {
        // An "interval" instance collapses entirely under reductions.
        let m = CoverMatrix::from_rows(4, vec![vec![0], vec![0, 1], vec![1, 2], vec![3]]);
        let out = Scg::with_defaults().solve(&m);
        assert!(out.proven_optimal);
        assert_eq!(out.iterations, 0);
        assert!(out.solution.is_feasible(&m));
    }

    #[test]
    fn infeasible_instance_reported() {
        let m = CoverMatrix::from_rows(2, vec![vec![0], vec![]]);
        let out = Scg::with_defaults().solve(&m);
        assert!(out.infeasible);
        assert!(out.cost.is_infinite());
    }

    #[test]
    fn empty_instance_trivially_optimal() {
        let m = CoverMatrix::from_rows(3, vec![]);
        let out = Scg::with_defaults().solve(&m);
        assert!(out.proven_optimal);
        assert_eq!(out.cost, 0.0);
        assert!(out.solution.is_empty());
    }

    #[test]
    fn cost_at_least_lower_bound() {
        let m = cycle(13);
        let out = Scg::with_defaults().solve(&m);
        assert!(out.cost >= out.lower_bound - 1e-9);
        assert!(out.solution.is_feasible(&m));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = cycle(9);
        let a = Scg::with_defaults().solve(&m);
        let b = Scg::with_defaults().solve(&m);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.solution.cols(), b.solution.cols());
    }

    #[test]
    fn fast_preset_still_feasible() {
        let m = cycle(15);
        let out = Scg::new(ScgOptions::fast()).solve(&m);
        assert!(out.solution.is_feasible(&m));
        assert!(out.cost >= 8.0); // optimum of C15
    }

    #[test]
    fn non_uniform_costs_respected() {
        // Two disjoint rows with a cheap and an expensive option each.
        let m = CoverMatrix::with_costs(4, vec![vec![0, 1], vec![2, 3]], vec![1.0, 9.0, 9.0, 1.0]);
        let out = Scg::with_defaults().solve(&m);
        assert_eq!(out.cost, 2.0);
        assert_eq!(out.solution.cols(), &[0, 3]);
        assert!(out.proven_optimal);
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;

    /// Two disjoint odd cycles: partitioning must split and certify.
    fn two_cycles(n: usize) -> CoverMatrix {
        let mut rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        rows.extend((0..n).map(|i| vec![n + i, n + (i + 1) % n]));
        CoverMatrix::from_rows(2 * n, rows)
    }

    #[test]
    fn partitioned_solve_is_optimal_and_certified() {
        let m = two_cycles(7);
        let out = Scg::with_defaults().solve(&m);
        assert!(out.solution.is_feasible(&m));
        assert_eq!(out.cost, 2.0 * (7 / 2 + 1) as f64);
        assert!(out.proven_optimal);
    }

    #[test]
    fn partitioning_agrees_with_monolithic_solve() {
        let m = two_cycles(5);
        let with = Scg::with_defaults().solve(&m);
        let without = Scg::new(ScgOptions {
            partition: false,
            ..ScgOptions::default()
        })
        .solve(&m);
        assert_eq!(with.cost, without.cost);
        assert!(with.solution.is_feasible(&m));
        assert!(without.solution.is_feasible(&m));
    }

    #[test]
    fn partitioned_infeasible_block_detected() {
        // Second block has an uncoverable row.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1, 0], vec![2], vec![]]);
        let out = Scg::with_defaults().solve(&m);
        assert!(out.infeasible);
    }

    #[test]
    fn time_limit_caps_restarts() {
        let m = two_cycles(9);
        let out = Scg::new(ScgOptions {
            num_iter: 50,
            time_limit: Some(Duration::from_millis(0)),
            ..ScgOptions::default()
        })
        .solve(&m);
        // The initial subgradient always runs; restarts are skipped.
        assert!(out.solution.is_feasible(&m));
    }
}

impl Scg {
    /// Runs `workers` independent solves with distinct seeds in parallel and
    /// returns the best outcome (ties broken towards certified results).
    ///
    /// Restarts are the paper's own diversification mechanism; running them
    /// concurrently changes nothing semantically — every worker is a
    /// deterministic `solve` with seed `opts.seed + k` — but uses the
    /// machine. Lower bounds from all workers are combined (each is valid,
    /// so the maximum is too).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use cover::CoverMatrix;
    /// use ucp_core::{Scg, ScgOptions};
    ///
    /// let m = CoverMatrix::from_rows(
    ///     5,
    ///     vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
    /// );
    /// let out = Scg::new(ScgOptions::default()).solve_parallel(&m, 4);
    /// assert_eq!(out.cost, 3.0);
    /// ```
    pub fn solve_parallel(&self, m: &CoverMatrix, workers: usize) -> ScgOutcome {
        assert!(workers > 0, "need at least one worker");
        if workers == 1 {
            return self.solve(m);
        }
        let outcomes: Vec<ScgOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    let opts = ScgOptions {
                        seed: self.opts.seed.wrapping_add(k as u64),
                        ..self.opts
                    };
                    scope.spawn(move || Scg::new(opts).solve(m))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let best_lb = outcomes
            .iter()
            .map(|o| o.lower_bound)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut best = outcomes
            .into_iter()
            .min_by(|a, b| {
                (a.cost, !a.proven_optimal)
                    .partial_cmp(&(b.cost, !b.proven_optimal))
                    .expect("costs are comparable")
            })
            .expect("workers > 0");
        best.lower_bound = best.lower_bound.max(best_lb);
        best.proven_optimal =
            best.proven_optimal || (m.integer_costs() && best.cost <= best.lower_bound + 1e-9);
        best
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_quality() {
        let m = CoverMatrix::from_rows(9, (0..9).map(|i| vec![i, (i + 1) % 9]).collect());
        let serial = Scg::with_defaults().solve(&m);
        let parallel = Scg::with_defaults().solve_parallel(&m, 4);
        assert!(parallel.cost <= serial.cost);
        assert!(parallel.solution.is_feasible(&m));
        assert!(parallel.lower_bound >= serial.lower_bound - 1e-9);
    }

    #[test]
    fn single_worker_is_plain_solve() {
        let m = CoverMatrix::from_rows(5, (0..5).map(|i| vec![i, (i + 1) % 5]).collect());
        let a = Scg::with_defaults().solve(&m);
        let b = Scg::with_defaults().solve_parallel(&m, 1);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.solution.cols(), b.solution.cols());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let m = CoverMatrix::from_rows(1, vec![vec![0]]);
        let _ = Scg::with_defaults().solve_parallel(&m, 0);
    }
}
