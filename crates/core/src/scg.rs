//! The `ZDD_SCG` constructive driver (Fig. 2 of the paper).
//!
//! The solve runs in two stages. The *reduce* stage — implicit + explicit
//! reductions to the cyclic core, partitioning, and the initial subgradient
//! ascent — is deterministic and runs exactly once per solve. The *restarts*
//! stage then executes the `NumIter` constructive runs, each repeatedly
//! *fixing* columns — the provably-optimal ones from penalty tests, the
//! "promising" ones from the §3.7 thresholds, and always one best-rated
//! column by `σ_j = c̃_j − α·μ_j` (randomised among the top `BestCol` in
//! the restarts) — then re-reducing and re-running the subgradient, until
//! the residual matrix empties or the local bound proves no improvement is
//! possible. Finally redundant columns are stripped.
//!
//! With [`ScgOptions::workers`] > 1 the restarts stage distributes runs
//! (and disconnected partition blocks) over a scoped thread pool sharing
//! one incumbent; see [`crate::restart`] for the engine and its
//! determinism contract — the answer is identical for every worker count.

use crate::dual::dual_ascent;
use crate::penalty::{dual_penalties, lagrangian_penalties};
#[cfg(test)]
use crate::request::SolveRequest;
use crate::request::{CancelFlag, Preset, SolveError};
use crate::restart::{restart_seed, BufferProbe, RestartCtx, SharedIncumbent};
use crate::subgradient::{
    certified, lb_ceil_of, subgradient_ascent_constrained_probed, subgradient_ascent_probed,
    SubgradientOptions, SubgradientResult,
};
use cover::{
    cyclic_core_halted, Constraints, CoreAbort, CoreOptions, CoverMatrix, Halt, HaltReason,
    Reducer, Solution,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
#[cfg(feature = "legacy-api")]
use ucp_telemetry::NoopProbe;
use ucp_telemetry::{Event, FixReason, PenaltyKind, Phase, PhaseTimes, Probe};

/// All tunables of the `ZDD_SCG` solver. Field defaults are the paper's
/// published values where given.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScgOptions {
    /// Cyclic-core computation options (`MaxR`, `MaxC`, implicit on/off).
    pub core: CoreOptions,
    /// Subgradient-phase tunables.
    pub subgradient: SubgradientOptions,
    /// `NumIter`: number of constructive runs (first deterministic, rest
    /// randomised).
    pub num_iter: usize,
    /// `BestCol` for restart `k` (1-based, `k ≥ 2`) is
    /// `min(1 + (k − 1) · best_col_growth, 16)`.
    pub best_col_growth: usize,
    /// `α` in the rating `σ_j = c̃_j − α·μ_j` (paper: 2).
    pub alpha: f64,
    /// `ĉ`: fix columns with Lagrangian cost at most this (paper: 0.001)…
    pub fix_cost_threshold: f64,
    /// …and dual-Lagrangian multiplier at least this (`μ̂`, paper: 0.999).
    pub fix_mu_threshold: f64,
    /// `DualPen`: run dual penalties only when the matrix has at most this
    /// many columns (paper: 100).
    pub dual_pen_limit: usize,
    /// RNG seed for the stochastic restarts. Each restart draws its own
    /// generator seed via [`restart_seed`], so the restart set — and
    /// therefore the answer — does not depend on scheduling.
    pub seed: u64,
    /// Optional overall wall-clock budget, shared by the whole solve: one
    /// deadline spans all partition blocks and all restarts. Once it
    /// passes, no further constructive work starts and in-flight runs
    /// abort at their next round boundary.
    pub time_limit: Option<std::time::Duration>,
    /// Apply the partitioning reduction (§2): disconnected blocks of the
    /// cyclic core are solved independently and their bounds added.
    pub partition: bool,
    /// Worker threads for the restarts stage (and for disconnected
    /// partition blocks). `1` solves inline on the calling thread; `0`
    /// means "all available parallelism". The answer is the same for
    /// every value — see [`crate::restart`].
    pub workers: usize,
    /// Serial-fallback threshold for the restarts stage: cores with fewer
    /// nonzeros than this solve inline even when [`ScgOptions::workers`]
    /// asks for a pool. Benchmarks on the snapshot suite measured the
    /// pooled path at 0.99× (restarts) and 0.966× (partition blocks) with
    /// 2 workers — on small sub-second cores thread spawn/join and the
    /// shared-incumbent traffic cost more than the restarts themselves,
    /// and on single-core hosts any pool is pure overhead. The restart
    /// engine's determinism contract guarantees the answer is identical
    /// either way, so this only moves the scheduling break-even point.
    /// `0` disables the fallback (always honor `workers`).
    pub parallel_nnz_threshold: usize,
    /// Emit an [`Event::Checkpoint`] (resumable solver state) after the
    /// initial subgradient ascent and after every `checkpoint_every`-th
    /// constructive run. `0` (the default) disables emission entirely —
    /// the solve is bit-identical to one without the field. Checkpoints
    /// are only emitted on the serial single-core restarts path and on
    /// the multicover path; partitioned and pooled stages skip them.
    pub checkpoint_every: usize,
}

impl Default for ScgOptions {
    fn default() -> Self {
        ScgOptions {
            core: CoreOptions::default(),
            subgradient: SubgradientOptions::default(),
            num_iter: 4,
            best_col_growth: 1,
            alpha: 2.0,
            fix_cost_threshold: 1e-3,
            fix_mu_threshold: 0.999,
            dual_pen_limit: 100,
            seed: 0xDA7E_2000,
            time_limit: None,
            partition: true,
            workers: 1,
            parallel_nnz_threshold: 16_384,
            checkpoint_every: 0,
        }
    }
}

impl ScgOptions {
    /// A cheaper preset for tests and very large sweeps: single run,
    /// shorter subgradient phases.
    ///
    /// Only available with the `legacy-api` cargo feature (off by
    /// default).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use `Preset::Fast.options()` (see `ucp_core::Preset`)")]
    pub fn fast() -> Self {
        Preset::Fast.options()
    }

    /// The option set of a named [`Preset`] — shorthand for
    /// [`Preset::options`].
    pub fn preset(preset: Preset) -> Self {
        preset.options()
    }
}

/// The result of a [`Scg::run`](crate::Scg::run) call.
#[derive(Clone, Debug)]
pub struct ScgOutcome {
    /// Best cover found, in original column indices.
    pub solution: Solution,
    /// Its cost (`+∞` when `infeasible`).
    pub cost: f64,
    /// Global lower bound: fixed-column cost plus the core's Lagrangian
    /// bound (rounded up under integer costs).
    pub lower_bound: f64,
    /// `true` when `cost == lower_bound` — the solution is certified optimal.
    pub proven_optimal: bool,
    /// `true` when some row cannot be covered at all.
    pub infeasible: bool,
    /// Constructive runs actually executed (`MaxIter` column of Tables 3–4).
    pub iterations: usize,
    /// Total subgradient iterations across all phases and workers.
    pub subgradient_iterations: usize,
    /// Pool size scheduled for the restarts stage (or the partition-block
    /// pool) — the decision after the
    /// [`ScgOptions::parallel_nnz_threshold`] serial fallback. `1` means
    /// the stage ran inline: requested serially, solved before any
    /// restart, or the core fell below the threshold.
    pub restart_workers: usize,
    /// Cyclic-core computation time (`CC(s)` column of Tables 1–2).
    pub cc_time: Duration,
    /// End-to-end solve time (`T(s)` column).
    pub total_time: Duration,
    /// Cyclic-core dimensions after all reductions.
    pub core_rows: usize,
    /// See [`ScgOutcome::core_rows`].
    pub core_cols: usize,
    /// Per-phase time breakdown, summed over all workers and partition
    /// blocks (CPU seconds, not wall clock: a parallel solve's phase total
    /// can exceed `total_time`). For sequential solves `phase_times.total()`
    /// closely tracks `total_time`.
    pub phase_times: PhaseTimes,
    /// ZDD manager counters from the implicit reduction phase (all zero
    /// when the implicit phase was disabled). The reduce stage runs once
    /// per solve, so these are independent of the worker count.
    pub zdd_stats: cover::ZddStats,
    /// `true` when the implicit phase exhausted its node budget and the
    /// solve fell back to the explicit representation (the result is
    /// still correct — only the reduction route changed).
    pub degraded: bool,
    /// Telemetry events the request's trace sink failed to persist (0
    /// for in-memory probes and unprobed solves). Filled by
    /// [`Scg::run`](crate::Scg::run) from the probe after the solve.
    pub dropped_events: u64,
    /// Constructive runs (ascents, for multicover solves) *skipped*
    /// because the request resumed from a [`crate::SolverCheckpoint`]
    /// that already accounted for them. `0` for cold solves and for
    /// requests whose checkpoint failed validation (those re-run from
    /// scratch).
    pub resumed: usize,
}

impl ScgOutcome {
    /// The relative optimality gap `(cost − LB) / LB` (0 when certified;
    /// `NaN` for infeasible outcomes).
    pub fn gap(&self) -> f64 {
        if self.infeasible {
            f64::NAN
        } else if self.lower_bound <= 0.0 {
            0.0
        } else {
            (self.cost - self.lower_bound).max(0.0) / self.lower_bound
        }
    }
}

/// The `ZDD_SCG` solver.
///
/// # Example
///
/// ```
/// use cover::CoverMatrix;
/// use ucp_core::{Scg, SolveRequest};
///
/// let m = CoverMatrix::from_rows(
///     5,
///     vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
/// );
/// let out = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
/// assert_eq!(out.cost, 3.0);
/// assert!(out.proven_optimal);
/// ```
#[derive(Clone, Debug)]
pub struct Scg {
    opts: ScgOptions,
}

/// What one constructive run spent and produced.
struct RunReport {
    /// Subgradient iterations executed by the run's nested ascents.
    sub_iters: usize,
    /// Wall-clock seconds of those ascents (credited to the subgradient
    /// phase in the breakdown, not to the constructive phase).
    sub_seconds: f64,
    /// Best complete cover cost the run produced (`+∞` if it aborted
    /// without completing one). Doubles as the run's own pruning bound.
    cost: f64,
}

/// What the restarts stage of one core solve spent.
#[derive(Default)]
struct RestartsResult {
    /// Restarts actually executed.
    iterations: usize,
    sub_iters: usize,
    sub_seconds: f64,
    /// Seconds inside restarts net of their nested ascents, summed over
    /// workers (CPU seconds).
    constructive_seconds: f64,
}

impl RestartsResult {
    fn absorb(&mut self, report: &RunReport, wall_seconds: f64) {
        self.iterations += 1;
        self.sub_iters += report.sub_iters;
        self.sub_seconds += report.sub_seconds;
        self.constructive_seconds += (wall_seconds - report.sub_seconds).max(0.0);
    }
}

/// Everything `solve_core` learned about one connected cyclic core.
struct CoreOutcome {
    /// Best core-level cover found (`None` only if even the initial
    /// ascent produced no heuristic cover).
    solution: Option<Solution>,
    /// The core's Lagrangian lower bound (rounded up under integer costs).
    lb: f64,
    iterations: usize,
    sub_iters: usize,
    sub_seconds: f64,
    constructive_seconds: f64,
    /// Constructive runs skipped because a checkpoint accounted for them.
    resumed: usize,
}

/// Checkpoint context for the restarts stage of the single connected
/// core: emission cadence, the solve's start instant (checkpoints carry
/// elapsed wall clock) and a validated checkpoint to resume from.
///
/// Only the unpartitioned path gets one — partition blocks and pooled
/// block solves pass `None` and neither emit nor resume, keeping the
/// checkpoint's core fingerprint unambiguous.
struct CkptCtx<'c> {
    /// Emit after every `every`-th constructive run (`0` = never).
    every: usize,
    /// When the solve started (for `elapsed_seconds`).
    start: Instant,
    /// Validated checkpoint whose runs are already accounted for.
    resume: Option<&'c crate::checkpoint::SolverCheckpoint>,
}

impl CkptCtx<'_> {
    /// Emits one [`Event::Checkpoint`] snapshot. Callers gate on the
    /// cadence; this only assembles the payload.
    fn emit<P: Probe>(
        &self,
        ae: &CoverMatrix,
        core_lb: f64,
        incumbent: &SharedIncumbent,
        next_run: usize,
        lambda: &[f64],
        probe: &mut P,
    ) {
        let (cost, solution) = incumbent.best();
        probe.record(Event::Checkpoint {
            next_run,
            core_rows: ae.num_rows(),
            core_cols: ae.num_cols(),
            lower_bound: core_lb,
            incumbent_cost: cost,
            elapsed_seconds: self.start.elapsed().as_secs_f64(),
            lambda: lambda.to_vec(),
            incumbent: solution.map(|s| s.cols().iter().map(|&c| c as u32).collect()),
            multicover: false,
        });
    }
}

/// A partition block's result slot: its core outcome plus the telemetry
/// its worker buffered, claimed by the merge in block order.
type BlockSlot = Mutex<Option<(CoreOutcome, Vec<Event>)>>;

/// One restart's buffered telemetry, kept until the merge in restart order.
struct RestartRecord {
    run: usize,
    worker: usize,
    wall_seconds: f64,
    report: RunReport,
    events: Vec<Event>,
}

impl Scg {
    /// Creates a solver with the given options.
    pub fn new(opts: ScgOptions) -> Self {
        Scg { opts }
    }

    /// Convenience constructor with default options.
    pub fn with_defaults() -> Self {
        Scg::new(ScgOptions::default())
    }

    /// Worker threads to actually use (`workers == 0` means "all cores").
    fn effective_workers(&self) -> usize {
        match self.opts.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            w => w,
        }
    }

    /// Pool size for the restarts stage on a core with `core_nnz`
    /// nonzeros: the requested workers, collapsed to `1` when the core is
    /// below [`ScgOptions::parallel_nnz_threshold`] (the measured
    /// break-even for pool overhead). Deterministic in the instance, so
    /// the recorded decision is reproducible.
    fn restart_pool(&self, core_nnz: usize) -> usize {
        let w = self.effective_workers();
        let th = self.opts.parallel_nnz_threshold;
        if w > 1 && th != 0 && core_nnz < th {
            1
        } else {
            w
        }
    }

    /// Solves the unate covering instance `m`.
    ///
    /// Only available with the `legacy-api` cargo feature (off by
    /// default).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use `Scg::run` with a `SolveRequest` (see the README migration table)")]
    pub fn solve(&self, m: &CoverMatrix) -> ScgOutcome {
        self.solve_impl(m, None, None, &mut NoopProbe)
            .unwrap_or_else(|e| panic!("solve failed: {e}"))
    }

    /// `solve` with a telemetry probe observing the pipeline.
    ///
    /// The probe receives [`Event::PhaseBegin`]/[`Event::PhaseEnd`] pairs for
    /// every phase of Fig. 2 (implicit and explicit reduction, partitioning,
    /// each subgradient ascent — including the warm-started ones nested in
    /// constructive runs — the constructive phase, and postprocessing), one
    /// [`Event::SubgradientIter`] per ascent iteration, and, inside the
    /// constructive runs, [`Event::RestartBegin`]/[`Event::RestartEnd`],
    /// [`Event::ColumnFix`] and [`Event::PenaltyElim`] events. Column indices
    /// in `ColumnFix` events refer to the cyclic core.
    ///
    /// The probe never crosses threads: with `workers > 1`, restarts (and
    /// partition blocks) record into per-worker buffers that are replayed
    /// into this probe in restart order (block order for blocks) after the
    /// pool joins, so a parallel trace reads like a sequential one apart
    /// from the `worker` tags on restart events.
    ///
    /// With [`NoopProbe`] (what `solve` passes) all instrumentation
    /// monomorphises away; the phase breakdown in [`ScgOutcome::phase_times`]
    /// is filled in either way.
    ///
    /// Only available with the `legacy-api` cargo feature (off by
    /// default).
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        note = "use `Scg::run` with `SolveRequest::for_matrix(m).probe(&mut p)` \
                (see the README migration table)"
    )]
    pub fn solve_with_probe<P: Probe>(&self, m: &CoverMatrix, probe: &mut P) -> ScgOutcome {
        self.solve_impl(m, None, None, probe)
            .unwrap_or_else(|e| panic!("solve failed: {e}"))
    }

    /// The one solve pipeline behind [`Scg::run`] and all deprecated
    /// entrypoints: reduce once, partition, then the restarts stage, with
    /// one [`Halt`] (deadline + cancellation) spanning everything.
    pub(crate) fn solve_impl<P: Probe>(
        &self,
        m: &CoverMatrix,
        cancel: Option<&CancelFlag>,
        resume: Option<&crate::checkpoint::SolverCheckpoint>,
        probe: &mut P,
    ) -> Result<ScgOutcome, SolveError> {
        let start = Instant::now();
        // One halt condition for the whole solve: every block and every
        // restart races the same clock and watches the same cancel flag.
        // It reaches all the way into the implicit-reduction operation
        // boundaries, so a deadline or cancellation lands mid-phase.
        let halt = Halt {
            deadline: self.opts.time_limit.map(|budget| start + budget),
            cancel: cancel.cloned(),
        };
        let integer_costs = m.integer_costs();
        let mut phases = PhaseTimes::default();

        // ---- Reduce stage: reductions to the cyclic core (run once). ----
        let core_res = cyclic_core_halted(m, &self.opts.core, &halt, &mut *probe).map_err(
            |abort| match abort {
                CoreAbort::Halted(HaltReason::Cancelled) => SolveError::Cancelled,
                CoreAbort::Halted(HaltReason::Expired) => SolveError::Expired,
                CoreAbort::Exhausted(e) => SolveError::ResourceExhausted(e),
            },
        )?;
        phases.add(
            Phase::ImplicitReduction,
            core_res.implicit_time.as_secs_f64(),
        );
        phases.add(
            Phase::ExplicitReduction,
            core_res.explicit_time.as_secs_f64(),
        );
        if core_res.infeasible {
            return Ok(ScgOutcome {
                solution: Solution::new(),
                cost: f64::INFINITY,
                lower_bound: f64::INFINITY,
                proven_optimal: false,
                infeasible: true,
                iterations: 0,
                subgradient_iterations: 0,
                restart_workers: 1,
                cc_time: core_res.cc_time,
                total_time: start.elapsed(),
                core_rows: core_res.core.num_rows(),
                core_cols: core_res.core.num_cols(),
                phase_times: phases,
                zdd_stats: core_res.zdd_stats,
                degraded: core_res.degraded,
                dropped_events: 0,
                resumed: 0,
            });
        }
        let fixed_cost: f64 = core_res.fixed_cols.iter().map(|&j| m.cost(j)).sum();
        let ae = &core_res.core;

        if core_res.is_solved() {
            let solution = Solution::from_cols(core_res.fixed_cols.clone());
            return Ok(ScgOutcome {
                cost: fixed_cost,
                lower_bound: fixed_cost,
                proven_optimal: true,
                infeasible: false,
                iterations: 0,
                subgradient_iterations: 0,
                restart_workers: 1,
                cc_time: core_res.cc_time,
                total_time: start.elapsed(),
                core_rows: 0,
                core_cols: 0,
                solution,
                phase_times: phases,
                zdd_stats: core_res.zdd_stats,
                degraded: core_res.degraded,
                dropped_events: 0,
                resumed: 0,
            });
        }

        // ---- Partitioning (§2): independent blocks solve independently. ----
        if self.opts.partition {
            probe.record(Event::PhaseBegin {
                phase: Phase::Partition,
            });
            let partition_start = Instant::now();
            let blocks = cover::partition(ae);
            let partition_time = partition_start.elapsed().as_secs_f64();
            phases.add(Phase::Partition, partition_time);
            probe.record(Event::PhaseEnd {
                phase: Phase::Partition,
                seconds: partition_time,
            });
            if blocks.len() > 1 {
                return Ok(self.solve_blocks(m, &core_res, blocks, start, &halt, phases, probe));
            }
        }

        // ---- Restarts stage on the single connected core. ----
        // A checkpoint resumes only when the deterministic reductions
        // reproduced the exact core it was taken on; anything else (or a
        // multicover/partitioned checkpoint) re-runs from scratch, which
        // is always correct — just slower.
        let resume = resume.filter(|ck| {
            !ck.multicover
                && ck.matches(m, false)
                && ck.core_rows == ae.num_rows()
                && ck.core_cols == ae.num_cols()
                && ck.lambda.len() == ae.num_rows()
                && ck.next_run >= 1
        });
        let ckpt_ctx = CkptCtx {
            every: self.opts.checkpoint_every,
            start,
            resume,
        };
        let co = self.solve_core(
            ae,
            integer_costs,
            &halt,
            0,
            false,
            Some(&ckpt_ctx),
            &mut *probe,
        );
        phases.add(Phase::Subgradient, co.sub_seconds);
        phases.add(Phase::Constructive, co.constructive_seconds);
        let global_lb = fixed_cost + co.lb.max(0.0);

        probe.record(Event::PhaseBegin {
            phase: Phase::Postprocess,
        });
        let post_start = Instant::now();
        let solution = match co.solution {
            Some(core_sol) => core_sol.lift(&core_res.col_map, &core_res.fixed_cols),
            None => Solution::from_cols(core_res.fixed_cols.clone()),
        };
        let cost = solution.cost(m);
        let proven_optimal = integer_costs && cost <= global_lb + 1e-9;
        let post_time = post_start.elapsed().as_secs_f64();
        phases.add(Phase::Postprocess, post_time);
        probe.record(Event::PhaseEnd {
            phase: Phase::Postprocess,
            seconds: post_time,
        });
        Ok(ScgOutcome {
            solution,
            cost,
            lower_bound: global_lb,
            proven_optimal,
            infeasible: false,
            iterations: co.iterations,
            subgradient_iterations: co.sub_iters,
            restart_workers: self.restart_pool(ae.nnz()).min(self.opts.num_iter.max(1)),
            cc_time: core_res.cc_time,
            total_time: start.elapsed(),
            core_rows: ae.num_rows(),
            core_cols: ae.num_cols(),
            phase_times: phases,
            zdd_stats: core_res.zdd_stats,
            degraded: core_res.degraded,
            dropped_events: 0,
            resumed: co.resumed,
        })
    }

    /// Solves a validated non-unate instance: set-multicover demand
    /// `Ap ≥ b` and/or GUB group bounds.
    ///
    /// The unate reduce stage does not apply here — essential-column,
    /// dominance and partitioning rules (and the constructive stage's
    /// penalty-driven fixing loop built on them) are theorems about
    /// `b ≡ 1` covers, so this path solves the whole matrix directly:
    /// one generalized two-sided ascent, then up to `NumIter − 1`
    /// restarts from jittered multipliers sharing the incumbent, exactly
    /// the role the randomised constructive runs play for unate solves.
    /// The lower bound relaxes the group bounds (valid: dropping an
    /// at-most constraint can only lower the optimum), so the integer
    /// certificate keeps its meaning and `proven_optimal` stays honest.
    ///
    /// When no restart finds a cover satisfying the constraints (the
    /// greedy can paint itself into a saturated group on a feasible
    /// instance), the outcome reports `cost = +∞` with an empty solution
    /// and `infeasible: false` — unlike the unate path, "no cover found"
    /// is not a proof of infeasibility here.
    pub(crate) fn solve_multicover_impl<P: Probe>(
        &self,
        m: &CoverMatrix,
        cons: &Constraints,
        cancel: Option<&CancelFlag>,
        resume: Option<&crate::checkpoint::SolverCheckpoint>,
        probe: &mut P,
    ) -> Result<ScgOutcome, SolveError> {
        let start = Instant::now();
        let halt = Halt {
            deadline: self.opts.time_limit.map(|budget| start + budget),
            cancel: cancel.cloned(),
        };
        let integer_costs = m.integer_costs();
        let mut phases = PhaseTimes::default();
        match halt.check() {
            Some(HaltReason::Cancelled) => return Err(SolveError::Cancelled),
            Some(HaltReason::Expired) => return Err(SolveError::Expired),
            None => {}
        }

        // The multicover loop's whole state is (best_lb, best_lambda,
        // best_cost, best_solution) — a checkpoint restores it exactly,
        // so a resumed solve continues as if never interrupted. Restart
        // jitter is seeded per (seed, k), independent of history.
        let resume = resume.filter(|ck| {
            ck.multicover
                && ck.matches(m, true)
                && ck.core_rows == m.num_rows()
                && ck.core_cols == m.num_cols()
                && ck.lambda.len() == m.num_rows()
                && ck.next_run >= 1
        });
        let every = self.opts.checkpoint_every;
        let emit_checkpoint = |next_run: usize,
                               lb: f64,
                               lambda: &[f64],
                               cost: f64,
                               solution: &Option<Solution>,
                               probe: &mut P| {
            probe.record(Event::Checkpoint {
                next_run,
                core_rows: m.num_rows(),
                core_cols: m.num_cols(),
                lower_bound: lb,
                incumbent_cost: cost,
                elapsed_seconds: start.elapsed().as_secs_f64(),
                lambda: lambda.to_vec(),
                incumbent: solution
                    .as_ref()
                    .map(|s| s.cols().iter().map(|&c| c as u32).collect()),
                multicover: true,
            });
        };

        probe.record(Event::PhaseBegin {
            phase: Phase::Subgradient,
        });
        let sub_start = Instant::now();
        let (mut sub_iters, mut best_lb, mut best_lambda, mut best_solution, mut best_cost);
        let (mut iterations, first_k, resumed);
        if let Some(ck) = resume {
            sub_iters = 0;
            best_lb = ck.lower_bound;
            best_lambda = ck.lambda.clone();
            best_solution = ck
                .incumbent
                .as_ref()
                .map(|cols| Solution::from_cols(cols.clone()));
            best_cost = ck.incumbent_cost;
            first_k = ck.next_run.clamp(1, self.opts.num_iter.max(1));
            iterations = first_k;
            resumed = first_k;
        } else {
            // Initial ascent: occurrence heuristic on, like the unate
            // initial problem (§3.5 applies rule 4 to the initial problem
            // only).
            let initial_opts = SubgradientOptions {
                occurrence_heuristic: true,
                ..self.opts.subgradient
            };
            let mut res =
                subgradient_ascent_constrained_probed(m, &initial_opts, cons, None, None, probe);
            sub_iters = res.iterations;
            best_lb = res.lb;
            best_lambda = std::mem::take(&mut res.lambda);
            best_solution = res.best_solution.take();
            best_cost = res.best_cost;
            iterations = 1;
            first_k = 1;
            resumed = 0;
        }
        if every > 0 {
            emit_checkpoint(
                first_k,
                best_lb,
                &best_lambda,
                best_cost,
                &best_solution,
                probe,
            );
        }

        for k in first_k..self.opts.num_iter.max(1) {
            if halt.check().is_some() || certified(integer_costs, best_lb, best_cost) {
                break;
            }
            // Jitter the best multipliers by ±20% — enough to land the
            // ascent in a different greedy trajectory, small enough to
            // keep the warm start useful. Deterministic per (seed, k),
            // like the unate restart schedule.
            let mut rng = StdRng::seed_from_u64(restart_seed(self.opts.seed, k));
            let lambda0: Vec<f64> = best_lambda
                .iter()
                .map(|&l| l * rng.random_range(0.8..1.2))
                .collect();
            let ub_hint = best_cost.is_finite().then_some(best_cost);
            let r = subgradient_ascent_constrained_probed(
                m,
                &self.opts.subgradient,
                cons,
                Some(&lambda0),
                ub_hint,
                probe,
            );
            sub_iters += r.iterations;
            iterations = k + 1;
            if r.lb > best_lb {
                best_lb = r.lb;
                best_lambda = r.lambda;
            }
            if r.best_cost < best_cost {
                best_cost = r.best_cost;
                best_solution = r.best_solution;
            }
            if every > 0 && k % every == 0 {
                emit_checkpoint(
                    k + 1,
                    best_lb,
                    &best_lambda,
                    best_cost,
                    &best_solution,
                    probe,
                );
            }
        }
        let sub_seconds = sub_start.elapsed().as_secs_f64();
        phases.add(Phase::Subgradient, sub_seconds);
        probe.record(Event::PhaseEnd {
            phase: Phase::Subgradient,
            seconds: sub_seconds,
        });

        probe.record(Event::PhaseBegin {
            phase: Phase::Postprocess,
        });
        let post_start = Instant::now();
        // Same rounding as the unate core: integer costs admit ⌈LB⌉.
        let lower_bound = if integer_costs && best_lb.is_finite() {
            lb_ceil_of(best_lb).max(0.0)
        } else {
            best_lb.max(0.0)
        };
        let (solution, cost) = match best_solution {
            Some(sol) => {
                let cost = sol.cost(m);
                debug_assert!(cons.is_satisfied(m, &sol));
                (sol, cost)
            }
            None => (Solution::new(), f64::INFINITY),
        };
        let proven_optimal = integer_costs && cost <= lower_bound + 1e-9;
        let post_time = post_start.elapsed().as_secs_f64();
        phases.add(Phase::Postprocess, post_time);
        probe.record(Event::PhaseEnd {
            phase: Phase::Postprocess,
            seconds: post_time,
        });
        Ok(ScgOutcome {
            solution,
            cost,
            lower_bound,
            proven_optimal,
            infeasible: false,
            iterations,
            subgradient_iterations: sub_iters,
            restart_workers: 1,
            cc_time: Duration::ZERO,
            total_time: start.elapsed(),
            core_rows: m.num_rows(),
            core_cols: m.num_cols(),
            phase_times: phases,
            zdd_stats: cover::ZddStats::default(),
            degraded: false,
            dropped_events: 0,
            resumed,
        })
    }

    /// Solves the disconnected blocks of an already-reduced cyclic core
    /// and recombines.
    ///
    /// Blocks of a matrix at the reduction fixpoint are themselves at the
    /// fixpoint (no reduction rule crosses disjoint components), so each
    /// block goes straight to its ascent + restarts — the cyclic core is
    /// computed exactly once per solve and the ZDD counters describe that
    /// single computation. With `workers > 1` the blocks themselves solve
    /// concurrently (restarts inside each block then run inline), their
    /// telemetry buffered per block and replayed in block order.
    #[allow(clippy::too_many_arguments)]
    fn solve_blocks<P: Probe>(
        &self,
        m: &CoverMatrix,
        core_res: &cover::CoreResult,
        blocks: Vec<cover::Block>,
        start: Instant,
        halt: &Halt,
        mut phases: PhaseTimes,
        probe: &mut P,
    ) -> ScgOutcome {
        let fixed_cost: f64 = core_res.fixed_cols.iter().map(|&j| m.cost(j)).sum();
        let mut solution = Solution::from_cols(core_res.fixed_cols.clone());
        let mut lower_bound = fixed_cost;
        let mut iterations = 0usize;
        let mut sub_iters = 0usize;
        // The serial-fallback decision looks at the whole core: if it is
        // too small to amortise a pool, its blocks certainly are.
        let pool = self.restart_pool(core_res.core.nnz());
        let pooled = pool > 1 && blocks.len() > 1;
        let restart_workers = if pooled { pool.min(blocks.len()) } else { 1 };

        let outcomes: Vec<CoreOutcome> = if pooled {
            let enabled = probe.enabled();
            let next = AtomicUsize::new(0);
            let slots: Vec<BlockSlot> = blocks.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for w in 0..pool.min(blocks.len()) {
                    let next = &next;
                    let slots = &slots;
                    let blocks = &blocks;
                    scope.spawn(move || loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= blocks.len() {
                            break;
                        }
                        let block = &blocks[b];
                        let mut buf = BufferProbe::new(enabled);
                        let co = self.solve_core(
                            &block.matrix,
                            block.matrix.integer_costs(),
                            halt,
                            w,
                            true,
                            None,
                            &mut buf,
                        );
                        *slots[b].lock().expect("block slot lock") = Some((co, buf.into_events()));
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    let (co, events) = slot
                        .into_inner()
                        .expect("block slot lock")
                        .expect("every block is solved");
                    for event in events {
                        probe.record(event);
                    }
                    co
                })
                .collect()
        } else {
            blocks
                .iter()
                .map(|block| {
                    self.solve_core(
                        &block.matrix,
                        block.matrix.integer_costs(),
                        halt,
                        0,
                        false,
                        None,
                        &mut *probe,
                    )
                })
                .collect()
        };

        for (block, co) in blocks.iter().zip(&outcomes) {
            phases.add(Phase::Subgradient, co.sub_seconds);
            phases.add(Phase::Constructive, co.constructive_seconds);
            sub_iters += co.sub_iters;
            iterations = iterations.max(co.iterations);
            lower_bound += co.lb.max(0.0);
            if let Some(sol) = &co.solution {
                solution.extend(
                    sol.cols()
                        .iter()
                        .map(|&j| core_res.col_map[block.col_map[j]]),
                );
            }
        }

        probe.record(Event::PhaseBegin {
            phase: Phase::Postprocess,
        });
        let post_start = Instant::now();
        let cost = solution.cost(m);
        let proven_optimal = m.integer_costs() && cost <= lower_bound + 1e-9;
        let post_time = post_start.elapsed().as_secs_f64();
        phases.add(Phase::Postprocess, post_time);
        probe.record(Event::PhaseEnd {
            phase: Phase::Postprocess,
            seconds: post_time,
        });
        ScgOutcome {
            solution,
            cost,
            lower_bound,
            proven_optimal,
            infeasible: false,
            iterations,
            subgradient_iterations: sub_iters,
            restart_workers,
            cc_time: core_res.cc_time,
            total_time: start.elapsed(),
            core_rows: core_res.core.num_rows(),
            core_cols: core_res.core.num_cols(),
            phase_times: phases,
            zdd_stats: core_res.zdd_stats,
            degraded: core_res.degraded,
            dropped_events: 0,
            resumed: 0,
        }
    }

    /// Restarts stage for one connected, fully-reduced core: the initial
    /// subgradient ascent (run once) followed by the `NumIter` restarts.
    ///
    /// `worker_tag` labels this core's restart events when they run inline;
    /// `force_serial` keeps restarts on the calling thread (used when the
    /// caller already parallelised across partition blocks).
    #[allow(clippy::too_many_arguments)]
    fn solve_core<P: Probe>(
        &self,
        ae: &CoverMatrix,
        integer_costs: bool,
        halt: &Halt,
        worker_tag: usize,
        force_serial: bool,
        ckpt: Option<&CkptCtx>,
        probe: &mut P,
    ) -> CoreOutcome {
        // ---- Initial subgradient ascent (deterministic, run once). ----
        let mut sub_opts = self.opts.subgradient;
        sub_opts.occurrence_heuristic = true;
        probe.record(Event::PhaseBegin {
            phase: Phase::Subgradient,
        });
        let sub_start = Instant::now();
        let sub0 = subgradient_ascent_probed(ae, &sub_opts, None, None, &mut *probe);
        let sub_time = sub_start.elapsed().as_secs_f64();
        probe.record(Event::PhaseEnd {
            phase: Phase::Subgradient,
            seconds: sub_time,
        });

        let core_lb = if integer_costs {
            sub0.lb_ceil()
        } else {
            sub0.lb
        };
        let incumbent = SharedIncumbent::new();
        let mut base_ub = f64::INFINITY;
        if let Some(sol) = sub0.best_solution.clone() {
            // Index 0: the initial ascent's heuristic cover, so every
            // restart loses ties against it. `offer` returns the *offered*
            // cover's irredundant cost, so base_ub stays the initial
            // ascent's value even when a resumed checkpoint inserts a
            // better incumbent below — the restarts' deterministic pruning
            // bound must not depend on how often the solve was
            // interrupted.
            base_ub = incumbent.offer(ae, sol, 0);
        }
        let mut first_run = 1usize;
        let mut resumed = 0usize;
        if let Some(ck) = ckpt.and_then(|c| c.resume) {
            if let Some(cols) = &ck.incumbent {
                // Also restart index 0: ties against the remaining runs
                // resolve exactly as if this cover predated all of them —
                // which it does.
                incumbent.offer(ae, Solution::from_cols(cols.clone()), 0);
            }
            first_run = ck.next_run.clamp(1, self.opts.num_iter + 1);
            resumed = first_run - 1;
        }
        if let Some(c) = ckpt.filter(|c| c.every > 0) {
            c.emit(ae, core_lb, &incumbent, first_run, &sub0.lambda, probe);
        }

        let mut restarts = RestartsResult::default();
        // A cover at the bound floor cannot be improved: skip the restarts.
        if base_ub > core_lb + 1e-9 {
            probe.record(Event::PhaseBegin {
                phase: Phase::Constructive,
            });
            restarts = self.run_restarts(
                ae,
                &sub0,
                core_lb,
                base_ub,
                first_run,
                halt,
                worker_tag,
                force_serial,
                ckpt,
                &incumbent,
                probe,
            );
            probe.record(Event::PhaseEnd {
                phase: Phase::Constructive,
                seconds: restarts.constructive_seconds,
            });
        }

        let (_cost, solution) = incumbent.into_best();
        CoreOutcome {
            solution,
            lb: core_lb,
            iterations: restarts.iterations,
            sub_iters: sub0.iterations + restarts.sub_iters,
            sub_seconds: sub_time + restarts.sub_seconds,
            constructive_seconds: restarts.constructive_seconds,
            resumed,
        }
    }

    /// Schedules the `NumIter` constructive runs, inline or across a
    /// scoped worker pool. Either way restart `k` runs with the seed
    /// `restart_seed(opts.seed, k)` and the deterministic pruning bound
    /// described in [`crate::restart`], so the set of offers — and hence
    /// the answer — is the same.
    #[allow(clippy::too_many_arguments)]
    fn run_restarts<P: Probe>(
        &self,
        ae: &CoverMatrix,
        sub0: &SubgradientResult,
        core_lb: f64,
        base_ub: f64,
        first_run: usize,
        halt: &Halt,
        worker_tag: usize,
        force_serial: bool,
        ckpt: Option<&CkptCtx>,
        incumbent: &SharedIncumbent,
        probe: &mut P,
    ) -> RestartsResult {
        let num_iter = self.opts.num_iter;
        let pool = if force_serial {
            1
        } else {
            self.restart_pool(ae.nnz()).min(num_iter.max(1))
        };
        let mut result = RestartsResult::default();

        if pool <= 1 {
            for run in first_run..=num_iter {
                if halt.reached() || incumbent.superseded(run) {
                    break;
                }
                probe.record(Event::RestartBegin {
                    run,
                    worker: worker_tag,
                });
                let run_start = Instant::now();
                let report =
                    self.restart_run(ae, sub0, run, core_lb, base_ub, halt, incumbent, probe);
                let wall = run_start.elapsed().as_secs_f64();
                if probe.enabled() {
                    probe.record(Event::RestartEnd {
                        run,
                        worker: worker_tag,
                        cost: report.cost,
                        best_cost: incumbent.best_cost(),
                    });
                }
                result.absorb(&report, wall);
                if let Some(c) = ckpt.filter(|c| c.every > 0 && run % c.every == 0) {
                    c.emit(ae, core_lb, incumbent, run + 1, &sub0.lambda, probe);
                }
            }
            return result;
        }

        // Pooled path: workers pull restart indices from a shared counter
        // and buffer their events; buffers are replayed in restart order
        // afterwards so the merged trace is schedule-independent apart
        // from the worker tags.
        let enabled = probe.enabled();
        let next = AtomicUsize::new(first_run);
        let records: Mutex<Vec<RestartRecord>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..pool {
                let next = &next;
                let records = &records;
                scope.spawn(move || loop {
                    let run = next.fetch_add(1, Ordering::Relaxed);
                    if run > num_iter || halt.reached() || incumbent.superseded(run) {
                        break;
                    }
                    let mut buf = BufferProbe::new(enabled);
                    let run_start = Instant::now();
                    let report = self
                        .restart_run(ae, sub0, run, core_lb, base_ub, halt, incumbent, &mut buf);
                    records
                        .lock()
                        .expect("restart records lock")
                        .push(RestartRecord {
                            run,
                            worker,
                            wall_seconds: run_start.elapsed().as_secs_f64(),
                            report,
                            events: buf.into_events(),
                        });
                });
            }
        });

        let mut records = records.into_inner().expect("restart records lock");
        records.sort_by_key(|r| r.run);
        // Replay in restart order, reconstructing the best-so-far prefix so
        // `RestartEnd::best_cost` is monotone exactly as in a serial trace.
        let mut best = base_ub;
        for rec in records {
            best = best.min(rec.report.cost);
            if enabled {
                probe.record(Event::RestartBegin {
                    run: rec.run,
                    worker: rec.worker,
                });
                for event in rec.events {
                    probe.record(event);
                }
                probe.record(Event::RestartEnd {
                    run: rec.run,
                    worker: rec.worker,
                    cost: rec.report.cost,
                    best_cost: best,
                });
            }
            result.absorb(&rec.report, rec.wall_seconds);
        }
        result
    }

    /// Runs constructive restart `run` (1-based) with its derived seed and
    /// `BestCol` width.
    #[allow(clippy::too_many_arguments)]
    fn restart_run<P: Probe>(
        &self,
        ae: &CoverMatrix,
        sub0: &SubgradientResult,
        run: usize,
        core_lb: f64,
        base_ub: f64,
        halt: &Halt,
        incumbent: &SharedIncumbent,
        probe: &mut P,
    ) -> RunReport {
        let best_col = if run == 1 {
            1
        } else {
            (1 + (run - 1) * self.opts.best_col_growth).min(16)
        };
        let mut rng = StdRng::seed_from_u64(restart_seed(self.opts.seed, run));
        let ctx = RestartCtx {
            incumbent,
            restart: run,
            base_ub,
            core_lb,
            halt,
        };
        self.constructive_run(ae, sub0, best_col, &mut rng, &ctx, probe)
    }

    /// One constructive run over the saved cyclic core `ae`. Offers covers
    /// to the shared incumbent; reports the subgradient effort spent and
    /// the best cover cost this run produced.
    fn constructive_run<P: Probe>(
        &self,
        ae: &CoverMatrix,
        sub0: &SubgradientResult,
        best_col: usize,
        rng: &mut StdRng,
        ctx: &RestartCtx<'_>,
        probe: &mut P,
    ) -> RunReport {
        let mut cur = ae.clone();
        // cur column j corresponds to core column cur_to_core[j].
        let mut cur_to_core: Vec<usize> = (0..ae.num_cols()).collect();
        let mut chosen: Vec<usize> = Vec::new(); // core ids
        let mut chosen_cost = 0.0f64;
        let mut lambda = sub0.lambda.clone();
        let mut sub: SubgradientResult = sub0.clone();
        let mut report = RunReport {
            sub_iters: 0,
            sub_seconds: 0.0,
            cost: f64::INFINITY,
        };
        let max_rounds = ae.num_cols() + 2;

        for _round in 0..max_rounds {
            // A sibling certified at the bound floor, or the deadline
            // passed: this run's offers can no longer matter.
            if ctx.should_abort() {
                return report;
            }
            // The pruning bound is deterministic — the initial incumbent
            // and this run's own offers, never a sibling's (see
            // crate::restart for why that distinction is load-bearing).
            let local_ub = ctx.path_ub(report.cost) - chosen_cost;
            // This branch cannot beat the bound: stop (the pseudocode's
            // `z_best ≤ ⌈LB⌉` exit).
            if sub.lb >= local_ub - 1e-9 {
                return report;
            }

            // §3.7 promising columns + §3.6 penalties.
            let mut take: Vec<usize> = (0..cur.num_cols())
                .filter(|&j| {
                    sub.c_tilde[j] <= self.opts.fix_cost_threshold
                        && sub.mu[j] >= self.opts.fix_mu_threshold
                })
                .collect();
            // Columns whose fixes were already announced to the probe, in
            // `cur` indices; red.fixed() minus these are Essential events.
            let mut announced = if probe.enabled() {
                for &j in &take {
                    probe.record(Event::ColumnFix {
                        col: cur_to_core[j],
                        sigma: sub.c_tilde[j],
                        mu: sub.mu[j],
                        reason: FixReason::Promising,
                    });
                }
                let mut seen = vec![false; cur.num_cols()];
                for &j in &take {
                    seen[j] = true;
                }
                seen
            } else {
                Vec::new()
            };
            let pen = lagrangian_penalties(&sub.c_tilde, sub.lb, local_ub);
            take.extend(pen.fix_in.iter().copied());
            let mut exclude = pen.fix_out;
            if probe.enabled() && !exclude.is_empty() {
                probe.record(Event::PenaltyElim {
                    kind: PenaltyKind::Lagrangian,
                    removed: exclude.len(),
                });
            }
            if cur.num_cols() <= self.opts.dual_pen_limit {
                let base = dual_ascent(&cur, cur.costs(), Some(&sub.lambda)).m;
                let dpen = dual_penalties(&cur, &base, local_ub);
                if dpen.no_improvement_possible {
                    return report;
                }
                if probe.enabled() && !dpen.fix_out.is_empty() {
                    probe.record(Event::PenaltyElim {
                        kind: PenaltyKind::Dual,
                        removed: dpen.fix_out.len(),
                    });
                }
                take.extend(dpen.fix_in);
                exclude.extend(dpen.fix_out);
            }
            take.sort_unstable();
            take.dedup();
            exclude.sort_unstable();
            exclude.dedup();
            // A column proven both ways means no improvement below the
            // incumbent exists on this branch.
            if take.iter().any(|j| exclude.binary_search(j).is_ok()) {
                return report;
            }

            // The mandatory σ-rated pick (guarantees progress).
            let mut rated: Vec<(f64, usize)> = (0..cur.num_cols())
                .filter(|j| take.binary_search(j).is_err() && exclude.binary_search(j).is_err())
                .map(|j| (sub.c_tilde[j] - self.opts.alpha * sub.mu[j], j))
                .collect();
            rated.sort_by(|a, b| a.partial_cmp(b).expect("σ ratings are finite"));
            if take.is_empty() && rated.is_empty() {
                return report; // everything excluded: dead branch
            }
            if let Some(&(sigma, pick)) = rated.get(if best_col <= 1 || rated.len() <= 1 {
                0
            } else {
                rng.random_range(0..best_col.min(rated.len()))
            }) {
                if probe.enabled() {
                    probe.record(Event::ColumnFix {
                        col: cur_to_core[pick],
                        sigma,
                        mu: sub.mu[pick],
                        reason: FixReason::RatedPick,
                    });
                    announced[pick] = true;
                }
                take.push(pick);
            }

            // Re-reduce with the fixes applied.
            let mut red = Reducer::with_state(&cur, &take, &exclude);
            red.reduce_to_fixpoint();
            if red.infeasible() {
                return report; // exclusions killed the branch: incumbent stands
            }
            for &j in red.fixed() {
                if probe.enabled() && !announced[j] {
                    probe.record(Event::ColumnFix {
                        col: cur_to_core[j],
                        sigma: sub.c_tilde[j],
                        mu: sub.mu[j],
                        reason: FixReason::Essential,
                    });
                }
                chosen.push(cur_to_core[j]);
                chosen_cost += cur.cost(j);
            }
            let (next, row_map, col_map) = red.extract_core();
            lambda = row_map.iter().map(|&i| lambda[i]).collect();
            cur_to_core = col_map.iter().map(|&j| cur_to_core[j]).collect();
            cur = next;

            if cur.num_rows() == 0 {
                let offered = ctx.offer(ae, Solution::from_cols(chosen));
                report.cost = report.cost.min(offered);
                return report;
            }

            // Subgradient on the reduced matrix, warm-started. The ascent
            // reports its own begin/end pair so traces show nested phases;
            // its seconds are credited to Subgradient, not Constructive.
            let mut sopts = self.opts.subgradient;
            sopts.occurrence_heuristic = false;
            probe.record(Event::PhaseBegin {
                phase: Phase::Subgradient,
            });
            let ascent_start = Instant::now();
            sub =
                subgradient_ascent_probed(&cur, &sopts, Some(&lambda), Some(local_ub), &mut *probe);
            let ascent_seconds = ascent_start.elapsed().as_secs_f64();
            report.sub_seconds += ascent_seconds;
            probe.record(Event::PhaseEnd {
                phase: Phase::Subgradient,
                seconds: ascent_seconds,
            });
            report.sub_iters += sub.iterations;
            lambda = sub.lambda.clone();
            if let Some(part) = &sub.best_solution {
                let mut full = Solution::from_cols(chosen.clone());
                full.extend(part.cols().iter().map(|&j| cur_to_core[j]));
                let offered = ctx.offer(ae, full);
                report.cost = report.cost.min(offered);
            }
        }
        report
    }
}

/// Test shorthand: [`Scg::run`] with default options (a request with no
/// cancel flag cannot fail).
#[cfg(test)]
fn run_default(m: &CoverMatrix) -> ScgOutcome {
    Scg::run(SolveRequest::for_matrix(m)).expect("no cancel flag")
}

/// Test shorthand: [`Scg::run`] with explicit options.
#[cfg(test)]
fn run_opts(m: &CoverMatrix, opts: ScgOptions) -> ScgOutcome {
    Scg::run(SolveRequest::for_matrix(m).options(opts)).expect("no cancel flag")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> CoverMatrix {
        CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
    }

    #[test]
    fn solves_cycles_optimally() {
        for n in [5usize, 7, 9, 11] {
            let m = cycle(n);
            let out = run_default(&m);
            assert!(out.solution.is_feasible(&m));
            assert_eq!(out.cost, (n / 2 + 1) as f64, "C{n}");
            assert!(out.proven_optimal, "C{n} not certified");
        }
    }

    #[test]
    fn reductions_alone_solve_trees() {
        // An "interval" instance collapses entirely under reductions.
        let m = CoverMatrix::from_rows(4, vec![vec![0], vec![0, 1], vec![1, 2], vec![3]]);
        let out = run_default(&m);
        assert!(out.proven_optimal);
        assert_eq!(out.iterations, 0);
        assert!(out.solution.is_feasible(&m));
    }

    #[test]
    fn infeasible_instance_reported() {
        let m = CoverMatrix::from_rows(2, vec![vec![0], vec![]]);
        let out = run_default(&m);
        assert!(out.infeasible);
        assert!(out.cost.is_infinite());
    }

    #[test]
    fn empty_instance_trivially_optimal() {
        let m = CoverMatrix::from_rows(3, vec![]);
        let out = run_default(&m);
        assert!(out.proven_optimal);
        assert_eq!(out.cost, 0.0);
        assert!(out.solution.is_empty());
    }

    #[test]
    fn cost_at_least_lower_bound() {
        let m = cycle(13);
        let out = run_default(&m);
        assert!(out.cost >= out.lower_bound - 1e-9);
        assert!(out.solution.is_feasible(&m));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = cycle(9);
        let a = run_default(&m);
        let b = run_default(&m);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.solution.cols(), b.solution.cols());
    }

    #[test]
    fn fast_preset_still_feasible() {
        let m = cycle(15);
        let out = run_opts(&m, Preset::Fast.options());
        assert!(out.solution.is_feasible(&m));
        assert!(out.cost >= 8.0); // optimum of C15
    }

    #[test]
    fn non_uniform_costs_respected() {
        // Two disjoint rows with a cheap and an expensive option each.
        let m = CoverMatrix::with_costs(4, vec![vec![0, 1], vec![2, 3]], vec![1.0, 9.0, 9.0, 1.0]);
        let out = run_default(&m);
        assert_eq!(out.cost, 2.0);
        assert_eq!(out.solution.cols(), &[0, 3]);
        assert!(out.proven_optimal);
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;

    /// Two disjoint odd cycles: partitioning must split and certify.
    fn two_cycles(n: usize) -> CoverMatrix {
        let mut rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        rows.extend((0..n).map(|i| vec![n + i, n + (i + 1) % n]));
        CoverMatrix::from_rows(2 * n, rows)
    }

    #[test]
    fn partitioned_solve_is_optimal_and_certified() {
        let m = two_cycles(7);
        let out = run_default(&m);
        assert!(out.solution.is_feasible(&m));
        assert_eq!(out.cost, 2.0 * (7 / 2 + 1) as f64);
        assert!(out.proven_optimal);
    }

    #[test]
    fn partitioning_agrees_with_monolithic_solve() {
        let m = two_cycles(5);
        let with = run_default(&m);
        let without = run_opts(
            &m,
            ScgOptions {
                partition: false,
                ..ScgOptions::default()
            },
        );
        assert_eq!(with.cost, without.cost);
        assert!(with.solution.is_feasible(&m));
        assert!(without.solution.is_feasible(&m));
    }

    #[test]
    fn partitioned_infeasible_block_detected() {
        // Second block has an uncoverable row.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1, 0], vec![2], vec![]]);
        let out = run_default(&m);
        assert!(out.infeasible);
    }

    #[test]
    fn expired_deadline_before_reduction_reports_expired() {
        // A 0ms budget expires before the implicit reduction reaches its
        // first op boundary, so the solve reports `Expired` instead of
        // silently returning a weaker cover.
        let m = two_cycles(9);
        let out = Scg::new(ScgOptions {
            num_iter: 50,
            time_limit: Some(Duration::from_millis(0)),
            ..ScgOptions::default()
        })
        .solve_impl(&m, None, None, &mut ucp_telemetry::NoopProbe);
        assert_eq!(out.unwrap_err(), SolveError::Expired);
    }

    #[test]
    fn generous_time_limit_still_solves() {
        // A deadline that outlives the reduce stage degrades gracefully:
        // restarts stop at the budget but the cover stays feasible.
        let m = two_cycles(9);
        let out = run_opts(
            &m,
            ScgOptions {
                num_iter: 50,
                time_limit: Some(Duration::from_secs(30)),
                ..ScgOptions::default()
            },
        );
        assert!(out.solution.is_feasible(&m));
    }

    #[test]
    fn concurrent_blocks_match_serial_blocks() {
        let m = two_cycles(9);
        let serial = run_default(&m);
        // threshold 0: force the block pool even on this tiny core so the
        // concurrent path stays under test.
        let parallel = run_opts(
            &m,
            ScgOptions {
                workers: 4,
                parallel_nnz_threshold: 0,
                ..ScgOptions::default()
            },
        );
        assert_eq!(serial.cost, parallel.cost);
        assert_eq!(serial.solution.cols(), parallel.solution.cols());
        assert_eq!(serial.lower_bound, parallel.lower_bound);
        assert!(parallel.restart_workers > 1, "block pool should engage");
        assert_eq!(serial.restart_workers, 1);
    }
}

impl Scg {
    /// Solves `m` with the shared-core restart engine spread over `workers`
    /// threads — shorthand for setting [`ScgOptions::workers`].
    ///
    /// Reductions, partitioning and the initial subgradient ascent run
    /// once; only the `NumIter` constructive restarts (and disconnected
    /// partition blocks) are distributed. All workers share one incumbent,
    /// stop as soon as any restart certifies `cost ≤ ⌈LB⌉`, and their
    /// phase/iteration counters are aggregated, so the outcome — cost,
    /// solution, bound, and work accounting — is exactly the single-worker
    /// outcome, only faster.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` (pass [`ScgOptions::workers`]` = 0` for
    /// "all cores" instead, where the meaning is unambiguous).
    ///
    /// # Example
    ///
    /// ```
    /// use cover::CoverMatrix;
    /// use ucp_core::{Scg, SolveRequest};
    ///
    /// let m = CoverMatrix::from_rows(
    ///     5,
    ///     vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
    /// );
    /// let out = Scg::run(SolveRequest::for_matrix(&m).workers(4)).unwrap();
    /// assert_eq!(out.cost, 3.0);
    /// ```
    ///
    /// Only available with the `legacy-api` cargo feature (off by
    /// default).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use `Scg::run` with `SolveRequest::for_matrix(m).workers(n)`")]
    pub fn solve_parallel(&self, m: &CoverMatrix, workers: usize) -> ScgOutcome {
        assert!(workers > 0, "need at least one worker");
        Scg::new(ScgOptions {
            workers,
            ..self.opts
        })
        .solve_impl(m, None, None, &mut NoopProbe)
        .unwrap_or_else(|e| panic!("solve failed: {e}"))
    }

    /// `solve_parallel` with a telemetry probe: the parallel path
    /// is fully observable (worker-tagged restart events, merged in
    /// restart order).
    ///
    /// Only available with the `legacy-api` cargo feature (off by
    /// default).
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        note = "use `Scg::run` with `SolveRequest::for_matrix(m).workers(n).probe(&mut p)`"
    )]
    pub fn solve_parallel_with_probe<P: Probe>(
        &self,
        m: &CoverMatrix,
        workers: usize,
        probe: &mut P,
    ) -> ScgOutcome {
        assert!(workers > 0, "need at least one worker");
        Scg::new(ScgOptions {
            workers,
            ..self.opts
        })
        .solve_impl(m, None, None, probe)
        .unwrap_or_else(|e| panic!("solve failed: {e}"))
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    /// Worker-count runs with the serial fallback disabled: these tests
    /// exist to exercise the pooled machinery, which the nnz threshold
    /// would otherwise bypass on such tiny fixtures.
    fn run_workers(m: &CoverMatrix, workers: usize) -> ScgOutcome {
        run_opts(
            m,
            ScgOptions {
                workers,
                parallel_nnz_threshold: 0,
                ..ScgOptions::default()
            },
        )
    }

    #[test]
    fn parallel_matches_serial_quality() {
        let m = CoverMatrix::from_rows(9, (0..9).map(|i| vec![i, (i + 1) % 9]).collect());
        let serial = run_default(&m);
        let parallel = run_workers(&m, 4);
        assert!(parallel.cost <= serial.cost);
        assert!(parallel.solution.is_feasible(&m));
        assert!(parallel.lower_bound >= serial.lower_bound - 1e-9);
    }

    #[test]
    fn single_worker_is_plain_solve() {
        let m = CoverMatrix::from_rows(5, (0..5).map(|i| vec![i, (i + 1) % 5]).collect());
        let a = run_default(&m);
        let b = run_workers(&m, 1);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.solution.cols(), b.solution.cols());
    }

    #[test]
    fn worker_count_does_not_change_the_answer() {
        // Bit-exact determinism across worker counts is the engine's core
        // contract; the integration suite exercises harder instances.
        let m = CoverMatrix::from_rows(11, (0..11).map(|i| vec![i, (i + 1) % 11]).collect());
        let base = run_default(&m);
        for workers in [2usize, 3, 8] {
            let out = run_workers(&m, workers);
            assert_eq!(out.cost, base.cost, "workers = {workers}");
            assert_eq!(
                out.solution.cols(),
                base.solution.cols(),
                "workers = {workers}"
            );
            assert_eq!(out.lower_bound, base.lower_bound, "workers = {workers}");
        }
    }

    #[test]
    fn workers_zero_in_options_means_all_cores() {
        let m = CoverMatrix::from_rows(7, (0..7).map(|i| vec![i, (i + 1) % 7]).collect());
        let out = run_opts(
            &m,
            ScgOptions {
                workers: 0,
                parallel_nnz_threshold: 0,
                ..ScgOptions::default()
            },
        );
        let base = run_default(&m);
        assert_eq!(out.cost, base.cost);
        assert_eq!(out.solution.cols(), base.solution.cols());
    }

    #[test]
    fn small_cores_fall_back_to_serial_restarts() {
        // Regression for the measured parallel slowdown (0.99×/0.966× at 2
        // workers on sub-second instances): with the default threshold, a
        // tiny core must ignore the requested pool — identical answer,
        // `restart_workers` records the decision.
        let m = CoverMatrix::from_rows(11, (0..11).map(|i| vec![i, (i + 1) % 11]).collect());
        let fallback = run_opts(
            &m,
            ScgOptions {
                workers: 4,
                ..ScgOptions::default()
            },
        );
        assert_eq!(fallback.restart_workers, 1, "11 nnz ≪ default threshold");
        let pooled = run_workers(&m, 4); // threshold 0 forces the pool
        assert!(pooled.restart_workers > 1);
        assert_eq!(fallback.cost, pooled.cost);
        assert_eq!(fallback.solution.cols(), pooled.solution.cols());
        assert_eq!(fallback.lower_bound, pooled.lower_bound);
    }

    #[test]
    fn restart_pool_threshold_logic() {
        let solver = |workers, threshold| {
            Scg::new(ScgOptions {
                workers,
                parallel_nnz_threshold: threshold,
                ..ScgOptions::default()
            })
        };
        // Below the threshold: collapse to 1. At or above: honor workers.
        assert_eq!(solver(4, 100).restart_pool(99), 1);
        assert_eq!(solver(4, 100).restart_pool(100), 4);
        // Threshold 0 disables the fallback entirely.
        assert_eq!(solver(4, 0).restart_pool(1), 4);
        // A serial request is untouched by the threshold.
        assert_eq!(solver(1, 100).restart_pool(5), 1);
    }
}

#[cfg(all(test, feature = "legacy-api"))]
mod legacy_shim_tests {
    // This module deliberately exercises the feature-gated deprecated
    // shims so they stay equivalent to `Scg::run` until removal.
    #![allow(deprecated)]
    use super::*;

    #[test]
    fn solve_parallel_shim_matches_the_request_route() {
        let m = CoverMatrix::from_rows(9, (0..9).map(|i| vec![i, (i + 1) % 9]).collect());
        let shim = Scg::with_defaults().solve_parallel(&m, 4);
        let new = run_opts(
            &m,
            ScgOptions {
                workers: 4,
                ..ScgOptions::default()
            },
        );
        assert_eq!(shim.cost, new.cost);
        assert_eq!(shim.solution.cols(), new.solution.cols());
        assert_eq!(shim.lower_bound, new.lower_bound);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let m = CoverMatrix::from_rows(1, vec![vec![0]]);
        let _ = Scg::with_defaults().solve_parallel(&m, 0);
    }

    #[test]
    fn deprecated_fast_shim_matches_the_preset() {
        let shim = ScgOptions::fast();
        let preset = Preset::Fast.options();
        assert_eq!(shim.num_iter, preset.num_iter);
        assert_eq!(shim.subgradient.max_iters, preset.subgradient.max_iters);
    }
}
