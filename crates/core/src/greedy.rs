//! The four Lagrangian greedy primal heuristics of §3.5.
//!
//! Starting from the (usually infeasible) Lagrangian solution
//! `{j : c̃_j ≤ 0}`, columns are added one at a time, each chosen to
//! minimise a rating `γ_j` combining its Lagrangian cost `c̃_j` with the
//! number `n_j` of still-uncovered rows it covers; finally redundant columns
//! are removed. Using Lagrangian instead of original costs lets the
//! multipliers weigh row importance — the paper's observed improvement over
//! plain Chvátal greedy.

use cover::{CoverMatrix, Solution};

/// The rating rule for the next column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GammaRule {
    /// `γ_j = c̃_j / n_j` (Chvátal's ratio with Lagrangian costs).
    Linear,
    /// `γ_j = c̃_j / lg₂(n_j + 1)`.
    Log,
    /// `γ_j = c̃_j / (n_j · lg₂(n_j + 1))`.
    LinearLog,
    /// The occurrence-weighted fourth rule: uncovered rows count inversely
    /// to how many columns could still cover them (`rows covered by few
    /// columns are more important`). Slower; the paper applies it to the
    /// initial problem only.
    Occurrence,
}

impl GammaRule {
    /// The three cheap rules, in the paper's order.
    pub const FAST: [GammaRule; 3] = [GammaRule::Linear, GammaRule::Log, GammaRule::LinearLog];
}

/// Runs one Lagrangian greedy pass with the given rule.
///
/// `c_tilde` are the Lagrangian costs steering the choice; the returned
/// cover is made irredundant under the matrix's *original* costs. Returns
/// `None` if the matrix has an uncoverable row.
///
/// # Panics
///
/// Panics if `c_tilde.len() != a.num_cols()`.
///
/// # Example
///
/// ```
/// use cover::CoverMatrix;
/// use ucp_core::greedy::{lagrangian_greedy, GammaRule};
///
/// let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1, 2]]);
/// let sol = lagrangian_greedy(&m, m.costs(), GammaRule::Linear).unwrap();
/// assert_eq!(sol.cols(), &[1]); // the middle column covers everything
/// ```
#[allow(clippy::needless_range_loop)] // scanning all columns by index is the clearest form
pub fn lagrangian_greedy(a: &CoverMatrix, c_tilde: &[f64], rule: GammaRule) -> Option<Solution> {
    assert_eq!(c_tilde.len(), a.num_cols(), "one rating cost per column");
    let n = a.num_cols();
    let mut selected = vec![false; n];
    let mut covered = vec![false; a.num_rows()];
    let mut uncovered = a.num_rows();

    // Seed with the Lagrangian relaxation's solution.
    for j in 0..n {
        if c_tilde[j] <= 0.0 {
            selected[j] = true;
            for &i in a.col_rows(j) {
                if !covered[i] {
                    covered[i] = true;
                    uncovered -= 1;
                }
            }
        }
    }

    while uncovered > 0 {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if selected[j] {
                continue;
            }
            let n_j = a.col_rows(j).iter().filter(|&&i| !covered[i]).count();
            if n_j == 0 {
                continue;
            }
            let gamma = rate(a, c_tilde, j, n_j, &covered, rule);
            let better = match best {
                None => true,
                Some((bj, bg)) => {
                    gamma < bg - 1e-12
                        || ((gamma - bg).abs() <= 1e-12 && (a.cost(j), j) < (a.cost(bj), bj))
                }
            };
            if better {
                best = Some((j, gamma));
            }
        }
        let (j, _) = best?; // no column covers a remaining row: infeasible
        selected[j] = true;
        for &i in a.col_rows(j) {
            if !covered[i] {
                covered[i] = true;
                uncovered -= 1;
            }
        }
    }

    let mut sol: Solution = (0..n).filter(|&j| selected[j]).collect();
    sol.make_irredundant(a);
    Some(sol)
}

fn rate(
    a: &CoverMatrix,
    c_tilde: &[f64],
    j: usize,
    n_j: usize,
    covered: &[bool],
    rule: GammaRule,
) -> f64 {
    let c = c_tilde[j].max(0.0);
    let nf = n_j as f64;
    match rule {
        GammaRule::Linear => c / nf,
        GammaRule::Log => c / (nf + 1.0).log2(),
        GammaRule::LinearLog => c / (nf * (nf + 1.0).log2()),
        GammaRule::Occurrence => {
            let mut weight = 0.0f64;
            for &i in a.col_rows(j) {
                if covered[i] {
                    continue;
                }
                let occ = a.row(i).len();
                weight += if occ > 1 {
                    1.0 / (occ as f64 - 1.0)
                } else {
                    // Essential row: make its column irresistible.
                    1e9
                };
            }
            c / weight
        }
    }
}

/// Runs every rule in `rules` and returns the cheapest cover found (by
/// original cost), or `None` on an uncoverable matrix.
pub fn best_greedy(
    a: &CoverMatrix,
    c_tilde: &[f64],
    rules: &[GammaRule],
) -> Option<(Solution, f64)> {
    let mut best: Option<(Solution, f64)> = None;
    for &rule in rules {
        if let Some(sol) = lagrangian_greedy(a, c_tilde, rule) {
            let cost = sol.cost(a);
            match &best {
                Some((_, bc)) if *bc <= cost => {}
                _ => best = Some((sol, cost)),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle5() -> CoverMatrix {
        CoverMatrix::from_rows(
            5,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
        )
    }

    #[test]
    fn greedy_covers_cycle() {
        let m = cycle5();
        for rule in [
            GammaRule::Linear,
            GammaRule::Log,
            GammaRule::LinearLog,
            GammaRule::Occurrence,
        ] {
            let sol = lagrangian_greedy(&m, m.costs(), rule).expect("coverable");
            assert!(sol.is_feasible(&m), "rule {rule:?}");
            assert_eq!(sol.cost(&m), 3.0, "rule {rule:?} should hit the optimum");
        }
    }

    #[test]
    fn negative_lagrangian_costs_seed_the_solution() {
        let m = cycle5();
        // λ large makes all columns free: everything selected, then the
        // irredundant pass thins it back to a minimal cover.
        let c_tilde = vec![-1.0; 5];
        let sol = lagrangian_greedy(&m, &c_tilde, GammaRule::Linear).unwrap();
        assert!(sol.is_feasible(&m));
        assert_eq!(sol.cost(&m), 3.0);
    }

    #[test]
    fn infeasible_matrix_returns_none() {
        let m = CoverMatrix::from_rows(1, vec![vec![0], vec![]]);
        assert!(lagrangian_greedy(&m, m.costs(), GammaRule::Linear).is_none());
    }

    #[test]
    fn greedy_prefers_cheap_wide_columns() {
        // Column 2 covers both rows; columns 0, 1 cover one each.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 2], vec![1, 2]]);
        let sol = lagrangian_greedy(&m, m.costs(), GammaRule::Linear).unwrap();
        assert_eq!(sol.cols(), &[2]);
    }

    #[test]
    fn occurrence_rule_prioritises_rare_rows() {
        // Row 1 is covered by a single column (1): rule 4 must pick it first
        // even though column 0 covers more rows.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1], vec![0, 2], vec![0, 2]]);
        let sol = lagrangian_greedy(&m, m.costs(), GammaRule::Occurrence).unwrap();
        assert!(sol.contains(1));
        assert!(sol.is_feasible(&m));
    }

    #[test]
    fn best_of_rules_never_worse_than_each() {
        let m = cycle5();
        let (best, cost) = best_greedy(&m, m.costs(), &GammaRule::FAST).unwrap();
        assert!(best.is_feasible(&m));
        for rule in GammaRule::FAST {
            let sol = lagrangian_greedy(&m, m.costs(), rule).unwrap();
            assert!(cost <= sol.cost(&m));
        }
    }
}
