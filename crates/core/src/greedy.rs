//! The four Lagrangian greedy primal heuristics of §3.5.
//!
//! Starting from the (usually infeasible) Lagrangian solution
//! `{j : c̃_j ≤ 0}`, columns are added one at a time, each chosen to
//! minimise a rating `γ_j` combining its Lagrangian cost `c̃_j` with the
//! number `n_j` of still-uncovered rows it covers; finally redundant columns
//! are removed. Using Lagrangian instead of original costs lets the
//! multipliers weigh row importance — the paper's observed improvement over
//! plain Chvátal greedy.
//!
//! The scans run on the matrix's flat CSR/CSC [`SparseView`] with a
//! reusable `GreedyScratch`: uncovered counts `n_j` are derived from
//! the rows still uncovered after seeding (and skipped entirely when the
//! seed already covers everything), the `lg₂` factors of the rating
//! rules come from a per-matrix lookup table (`n_j` is a small integer),
//! the pick loop scans a candidate list that compacts as columns drop
//! out, and the final redundancy elimination is a single pass in removal
//! priority order over the scratch's cover counts. A pass reports only
//! the cover's cost (`greedy_pass`); the `Solution` vector is
//! materialised just when a caller keeps the cover. All of it is exact:
//! the ratings, tie-breaks, removal sequence and cost fold are
//! bit-identical to the historical recompute-everything pass preserved
//! in [`crate::reference`], which the equivalence suite checks.

use cover::{Constraints, CoverMatrix, Solution, SparseView};
use std::cmp::Ordering;

/// Precomputed constraint context for the multicover greedy passes and
/// the constrained subgradient driver: per-row demand `b_i`, per-column
/// group membership and per-group at-most bounds, flattened once per
/// solve.
pub(crate) struct MulticoverCtx {
    /// Coverage requirement per row (`b_i ≥ 1`).
    pub demand: Vec<u32>,
    /// Group index per column; `usize::MAX` = ungrouped.
    pub group_of: Vec<usize>,
    /// At-most selection bound per group.
    pub bounds: Vec<u32>,
}

impl MulticoverCtx {
    /// Flattens a validated [`Constraints`] against `a`.
    pub fn new(a: &CoverMatrix, cons: &Constraints) -> Self {
        let demand = match cons.coverage_vec() {
            Some(c) => c.to_vec(),
            None => vec![1; a.num_rows()],
        };
        MulticoverCtx {
            demand,
            group_of: cons.group_index(a.num_cols()),
            bounds: cons.groups().iter().map(|g| g.bound()).collect(),
        }
    }
}

/// The rating rule for the next column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GammaRule {
    /// `γ_j = c̃_j / n_j` (Chvátal's ratio with Lagrangian costs).
    Linear,
    /// `γ_j = c̃_j / lg₂(n_j + 1)`.
    Log,
    /// `γ_j = c̃_j / (n_j · lg₂(n_j + 1))`.
    LinearLog,
    /// The occurrence-weighted fourth rule: uncovered rows count inversely
    /// to how many columns could still cover them (`rows covered by few
    /// columns are more important`). Slower; the paper applies it to the
    /// initial problem only.
    Occurrence,
}

impl GammaRule {
    /// The three cheap rules, in the paper's order.
    pub const FAST: [GammaRule; 3] = [GammaRule::Linear, GammaRule::Log, GammaRule::LinearLog];
}

/// Reusable buffers for `greedy_pass`, allocated once per matrix and
/// reset (never reallocated) on every pass.
pub(crate) struct GreedyScratch {
    selected: Vec<bool>,
    covered: Vec<bool>,
    /// `n_j`: uncovered rows covered by column `j`, kept exact as rows
    /// become covered. Built on demand when the seed leaves rows
    /// uncovered.
    n_uncov: Vec<u32>,
    /// `lg₂(k + 1)` for every possible uncovered count `k` (bounded by
    /// the maximum column degree): the Log/LinearLog rules look the
    /// factor up instead of re-deriving the same transcendental millions
    /// of times per ascent.
    log2_table: Vec<f64>,
    /// Candidate columns for the pick loop (ascending; compacted in
    /// place as columns are selected or run out of uncovered rows).
    candidates: Vec<u32>,
    /// Per row: how many selected columns cover it (redundancy pass).
    cover_count: Vec<u32>,
    /// Cached rating per column, valid while `!gamma_stale[j]`. Within a
    /// pass a column's rating changes only when one of its rows becomes
    /// covered (that flips `n_j` for every rule and the covered terms of
    /// the occurrence rule), so `cover_col` marks exactly those columns
    /// stale and the scan recomputes lazily.
    gamma: Vec<f64>,
    gamma_stale: Vec<bool>,
    /// Selected columns in removal priority order (highest cost first,
    /// lowest index among ties) — only used when costs are not uniform.
    by_priority: Vec<u32>,
    /// The pass's selected columns; after the redundancy pass, the
    /// irredundant cover in ascending order.
    sol_cols: Vec<u32>,
    /// All costs equal: the removal priority degenerates to ascending
    /// index and the per-pass priority sort can be skipped.
    uniform_costs: bool,
    /// Bitmask of the current pass's seed set `{j : c̃_j ≤ 0}`.
    seed_mask: Vec<u64>,
    /// Memo of the last pass whose seed already covered every row. Such a
    /// pass never picks, so its outcome is a pure function of the seed
    /// set and the original costs — the rule and the `c̃` magnitudes are
    /// irrelevant. `cached_mask`/`cached_cost`/`cached_sol` replay it
    /// when the sign pattern recurs (λ moves slowly late in an ascent,
    /// so it usually does).
    cache_valid: bool,
    cached_mask: Vec<u64>,
    cached_cost: f64,
    cached_sol: Vec<u32>,
    /// Selected-columns-per-group counters for the constrained pass
    /// (sized on first constrained use; untouched by the unate pass).
    group_used: Vec<u32>,
}

impl GreedyScratch {
    pub fn new(a: &CoverMatrix) -> Self {
        let view = a.sparse();
        let max_degree = (0..a.num_cols())
            .map(|j| view.col(j).len())
            .max()
            .unwrap_or(0);
        GreedyScratch {
            selected: vec![false; a.num_cols()],
            covered: vec![false; a.num_rows()],
            n_uncov: vec![0; a.num_cols()],
            log2_table: (0..=max_degree).map(|k| (k as f64 + 1.0).log2()).collect(),
            candidates: Vec::with_capacity(a.num_cols()),
            cover_count: vec![0; a.num_rows()],
            gamma: vec![0.0; a.num_cols()],
            gamma_stale: vec![false; a.num_cols()],
            by_priority: Vec::new(),
            sol_cols: Vec::new(),
            uniform_costs: a.costs().windows(2).all(|w| w[0] == w[1]),
            seed_mask: vec![0; a.num_cols().div_ceil(64)],
            cache_valid: false,
            cached_mask: vec![0; a.num_cols().div_ceil(64)],
            cached_cost: f64::INFINITY,
            cached_sol: Vec::new(),
            group_used: Vec::new(),
        }
    }

    /// Materialises the last `greedy_pass`'s irredundant cover.
    pub fn extract_solution(&self) -> Solution {
        Solution::from_cols(self.sol_cols.iter().map(|&j| j as usize).collect())
    }
}

/// Marks every row of column `j` covered, maintaining the uncovered
/// count of every column touching a newly-covered row.
fn cover_col(
    view: &SparseView,
    j: usize,
    covered: &mut [bool],
    n_uncov: &mut [u32],
    gamma_stale: &mut [bool],
    uncovered: &mut usize,
) {
    for &i in view.col(j) {
        let i = i as usize;
        if !covered[i] {
            covered[i] = true;
            *uncovered -= 1;
            for &jj in view.row(i) {
                n_uncov[jj as usize] -= 1;
                gamma_stale[jj as usize] = true;
            }
        }
    }
}

/// One Lagrangian greedy pass over `scratch`'s buffers: seeds from the
/// relaxation solution, picks by rating until feasible, removes
/// redundant columns, and returns the cover's cost (the same fold as
/// [`Solution::cost`] on the extracted cover). The irredundant cover
/// stays in the scratch; [`GreedyScratch::extract_solution`] materialises
/// it when the caller keeps it. Returns `None` on an uncoverable row.
#[allow(clippy::needless_range_loop)] // scanning all columns by index is the clearest form
pub(crate) fn greedy_pass(
    a: &CoverMatrix,
    view: &SparseView,
    c_tilde: &[f64],
    rule: GammaRule,
    ws: &mut GreedyScratch,
) -> Option<f64> {
    let m_rows = a.num_rows();
    let costs = a.costs();

    // Sign mask of the seed set {j : c̃_j ≤ 0}. Built branchless (the
    // comparison against zero vectorises) so the memo check below costs
    // one compare of a handful of words.
    for w in ws.seed_mask.iter_mut() {
        *w = 0;
    }
    for (j, &c) in c_tilde.iter().enumerate() {
        ws.seed_mask[j >> 6] |= u64::from(c <= 0.0) << (j & 63);
    }
    if ws.cache_valid && ws.seed_mask == ws.cached_mask {
        // Same seed set as the memoised full-seed pass: that pass
        // covered every row from the seed alone, so this one does too,
        // takes no picks, and reduces to the identical irredundant
        // cover and cost.
        ws.sol_cols.clone_from(&ws.cached_sol);
        return Some(ws.cached_cost);
    }

    ws.selected.fill(false);
    ws.covered.fill(false);
    ws.sol_cols.clear();
    let mut uncovered = m_rows;

    // Seed with the Lagrangian relaxation's solution (ascending — the
    // mask replays the `c̃_j ≤ 0` scan). The uncovered counts are not
    // maintained here: most passes cover everything in the seed, and
    // the pick loop rebuilds them cheaply from the rows that remain.
    for (w, &word) in ws.seed_mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let j = (w << 6) + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            ws.selected[j] = true;
            ws.sol_cols.push(j as u32);
            for &i in view.col(j) {
                let i = i as usize;
                uncovered -= usize::from(!ws.covered[i]);
                ws.covered[i] = true;
            }
        }
    }
    let seeded_full = uncovered == 0;

    if uncovered > 0 {
        // `n_j` = uncovered rows in column `j`, derived from the
        // uncovered rows alone (identical integers to seeding full
        // degrees and decrementing along the way). The candidates are
        // exactly the columns touching an uncovered row, ascending after
        // the sort: a column with `n_j = 0` never reaches a comparison
        // in the reference scan, and a selected column has no uncovered
        // rows, so this is the same comparison sequence as scanning all
        // of `0..n`. A column leaves the list for good once selected or
        // out of uncovered rows (`n_uncov` only decreases), so each
        // scan compacts the list in place; the surviving subsequence
        // keeps the ascending order, and with it every pick under the
        // ε-tie-break.
        ws.n_uncov.fill(0);
        for i in 0..m_rows {
            if !ws.covered[i] {
                for &j in view.row(i) {
                    ws.n_uncov[j as usize] += 1;
                }
            }
        }
        // Ascending by construction — a sequential scan of the counts
        // beats collecting during the row sweep and sorting afterwards.
        ws.candidates.clear();
        for (j, &c) in ws.n_uncov.iter().enumerate() {
            if c > 0 {
                ws.candidates.push(j as u32);
                ws.gamma_stale[j] = true;
            }
        }
        while uncovered > 0 {
            let mut best: Option<(usize, f64)> = None;
            let mut kept = 0usize;
            if ws.uniform_costs {
                // Equal costs collapse the ε-tie-break: the scan is
                // ascending, so the incumbent's index is always smaller
                // than the challenger's and a tie can never prefer the
                // challenger — the update test is the strict compare
                // alone. `(MAX, ∞)` stands in for `None` (any finite
                // rating beats `∞ − ε = ∞`).
                let (mut bj, mut bg) = (usize::MAX, f64::INFINITY);
                for r in 0..ws.candidates.len() {
                    let j = ws.candidates[r] as usize;
                    let n_j = ws.n_uncov[j] as usize;
                    if n_j == 0 {
                        continue;
                    }
                    ws.candidates[kept] = j as u32;
                    kept += 1;
                    let gamma = if ws.gamma_stale[j] {
                        let g = rate(view, c_tilde, j, n_j, &ws.covered, &ws.log2_table, rule);
                        ws.gamma[j] = g;
                        ws.gamma_stale[j] = false;
                        g
                    } else {
                        ws.gamma[j]
                    };
                    if gamma < bg - 1e-12 {
                        bj = j;
                        bg = gamma;
                    }
                }
                if bj != usize::MAX {
                    best = Some((bj, bg));
                }
            } else {
                for r in 0..ws.candidates.len() {
                    let j = ws.candidates[r] as usize;
                    let n_j = ws.n_uncov[j] as usize;
                    if n_j == 0 {
                        continue;
                    }
                    ws.candidates[kept] = j as u32;
                    kept += 1;
                    let gamma = if ws.gamma_stale[j] {
                        let g = rate(view, c_tilde, j, n_j, &ws.covered, &ws.log2_table, rule);
                        ws.gamma[j] = g;
                        ws.gamma_stale[j] = false;
                        g
                    } else {
                        ws.gamma[j]
                    };
                    let better = match best {
                        None => true,
                        Some((bj, bg)) => {
                            gamma < bg - 1e-12
                                || ((gamma - bg).abs() <= 1e-12 && (costs[j], j) < (costs[bj], bj))
                        }
                    };
                    if better {
                        best = Some((j, gamma));
                    }
                }
            }
            ws.candidates.truncate(kept);
            let Some((j, _)) = best else {
                // No column covers a remaining row: infeasible.
                return None;
            };
            ws.selected[j] = true;
            ws.sol_cols.push(j as u32);
            // The picked column leaves the candidate list here (instead
            // of a per-step `selected` test in the scan: seeded columns
            // have no uncovered rows, so picked ones are the only
            // selected columns the list can contain).
            if let Ok(slot) = ws.candidates.binary_search(&(j as u32)) {
                ws.candidates.remove(slot);
            }
            cover_col(
                view,
                j,
                &mut ws.covered,
                &mut ws.n_uncov,
                &mut ws.gamma_stale,
                &mut uncovered,
            );
        }
    }

    // Remove redundant columns — same removal sequence as
    // [`Solution::make_irredundant`] (highest original cost first,
    // lowest index among ties): one pass in that priority order is
    // exact, because removals only decrease cover counts, so a column
    // observed non-redundant can never become redundant later.
    if !seeded_full {
        // The seed prefix is already ascending; only picked columns can
        // be out of place.
        ws.sol_cols.sort_unstable();
    }
    ws.cover_count.fill(0);
    for &j in &ws.sol_cols {
        for &i in view.col(j as usize) {
            ws.cover_count[i as usize] += 1;
        }
    }
    if ws.uniform_costs {
        // Equal costs: priority order is plain ascending index.
        for idx in 0..ws.sol_cols.len() {
            let j = ws.sol_cols[idx] as usize;
            if view.col(j).iter().all(|&i| ws.cover_count[i as usize] >= 2) {
                ws.selected[j] = false;
                for &i in view.col(j) {
                    ws.cover_count[i as usize] -= 1;
                }
            }
        }
    } else {
        ws.by_priority.clone_from(&ws.sol_cols);
        ws.by_priority.sort_unstable_by(|&x, &y| {
            costs[y as usize]
                .partial_cmp(&costs[x as usize])
                .unwrap_or(Ordering::Equal)
                .then(x.cmp(&y))
        });
        for idx in 0..ws.by_priority.len() {
            let j = ws.by_priority[idx] as usize;
            if view.col(j).iter().all(|&i| ws.cover_count[i as usize] >= 2) {
                ws.selected[j] = false;
                for &i in view.col(j) {
                    ws.cover_count[i as usize] -= 1;
                }
            }
        }
    }
    ws.sol_cols.retain(|&j| ws.selected[j as usize]);
    // The cover's cost, in [`Solution::cost`]'s ascending fold order.
    let mut cost = 0.0f64;
    for &j in &ws.sol_cols {
        cost += costs[j as usize];
    }
    if seeded_full {
        ws.cache_valid = true;
        ws.cached_mask.clone_from(&ws.seed_mask);
        ws.cached_cost = cost;
        ws.cached_sol.clone_from(&ws.sol_cols);
    }
    Some(cost)
}

/// The constrained generalization of [`greedy_pass`]: set-multicover
/// demand `b_i` per row plus at-most-`k` GUB group bounds. The unate
/// pass is the `b ≡ 1`, no-groups specialization (and keeps its own
/// hand-tuned loop above — the seed memo and the uniform-cost tie-break
/// collapse rely on unate invariants). Differences:
///
/// * a row is *satisfied* once `b_i` distinct selected columns cover it;
///   `n_j` counts a column's not-yet-satisfied rows (each selection adds
///   one unit of supply per row);
/// * seeding and picking skip columns whose GUB group is saturated, and
///   the candidate scan skips already-selected columns — with `b_i ≥ 2`
///   a selected column can still touch unsatisfied rows, an invariant
///   break the unate pass never sees;
/// * redundancy removal drops a column only when every row it covers
///   retains `> b_i` covers (removals can never violate an at-most
///   group bound).
///
/// Returns the cover's cost, or `None` when demand cannot be met under
/// the group bounds (multicover feasibility under GUB is NP-hard; the
/// structural pre-checks in [`Constraints::validate_for`] are necessary,
/// not sufficient).
#[allow(clippy::needless_range_loop)] // mirrors the unate pass's index scans
pub(crate) fn greedy_pass_constrained(
    a: &CoverMatrix,
    view: &SparseView,
    c_tilde: &[f64],
    rule: GammaRule,
    ctx: &MulticoverCtx,
    ws: &mut GreedyScratch,
) -> Option<f64> {
    let m_rows = a.num_rows();
    let costs = a.costs();
    // The unate seed memo keys on the seed sign pattern alone, which is
    // not sufficient under demand/groups: never reuse it across kinds.
    ws.cache_valid = false;

    ws.selected.fill(false);
    ws.covered.fill(false);
    ws.cover_count.fill(0);
    ws.sol_cols.clear();
    ws.group_used.clear();
    ws.group_used.resize(ctx.bounds.len(), 0);
    let mut uncovered = 0usize;
    for i in 0..m_rows {
        if ctx.demand[i] == 0 {
            // Validation rejects b_i = 0, but treat it as "already
            // satisfied" so this pass is locally safe regardless.
            ws.covered[i] = true;
        } else {
            uncovered += 1;
        }
    }

    // Seed with the relaxation solution, ascending, honouring the group
    // bounds as we go (first-fit within each group).
    for (j, &c) in c_tilde.iter().enumerate() {
        if c > 0.0 {
            continue;
        }
        let g = ctx.group_of[j];
        if g != usize::MAX && ws.group_used[g] >= ctx.bounds[g] {
            continue;
        }
        if g != usize::MAX {
            ws.group_used[g] += 1;
        }
        ws.selected[j] = true;
        ws.sol_cols.push(j as u32);
        for &i in view.col(j) {
            let i = i as usize;
            ws.cover_count[i] += 1;
            if ws.cover_count[i] == ctx.demand[i] {
                ws.covered[i] = true;
                uncovered -= 1;
            }
        }
    }

    if uncovered > 0 {
        // `n_j` = unsatisfied rows covered by column `j`; candidates are
        // the unselected columns that still help some row and whose
        // group has capacity.
        ws.n_uncov.fill(0);
        for i in 0..m_rows {
            if !ws.covered[i] {
                for &j in view.row(i) {
                    ws.n_uncov[j as usize] += 1;
                }
            }
        }
        ws.candidates.clear();
        for (j, &c) in ws.n_uncov.iter().enumerate() {
            // Skip selected columns: under `b_i ≥ 2` a selected column
            // can still touch unsatisfied rows, but re-picking it adds
            // no supply. (A no-op in the unate pass, where a selected
            // column never retains uncovered rows.)
            if c > 0 && !ws.selected[j] {
                ws.candidates.push(j as u32);
                ws.gamma_stale[j] = true;
            }
        }
        while uncovered > 0 {
            let mut best: Option<(usize, f64)> = None;
            let mut kept = 0usize;
            for r in 0..ws.candidates.len() {
                let j = ws.candidates[r] as usize;
                let n_j = ws.n_uncov[j] as usize;
                if n_j == 0 {
                    continue;
                }
                let g = ctx.group_of[j];
                if g != usize::MAX && ws.group_used[g] >= ctx.bounds[g] {
                    // Saturated group: out for the rest of the pass
                    // (selections only grow `group_used`).
                    continue;
                }
                ws.candidates[kept] = j as u32;
                kept += 1;
                let gamma = if ws.gamma_stale[j] {
                    let g = rate(view, c_tilde, j, n_j, &ws.covered, &ws.log2_table, rule);
                    ws.gamma[j] = g;
                    ws.gamma_stale[j] = false;
                    g
                } else {
                    ws.gamma[j]
                };
                let better = match best {
                    None => true,
                    Some((bj, bg)) => {
                        gamma < bg - 1e-12
                            || ((gamma - bg).abs() <= 1e-12 && (costs[j], j) < (costs[bj], bj))
                    }
                };
                if better {
                    best = Some((j, gamma));
                }
            }
            ws.candidates.truncate(kept);
            let Some((j, _)) = best else {
                // No admissible column helps a remaining row: demand
                // cannot be met under the group bounds.
                return None;
            };
            ws.selected[j] = true;
            ws.sol_cols.push(j as u32);
            let g = ctx.group_of[j];
            if g != usize::MAX {
                ws.group_used[g] += 1;
            }
            if let Ok(slot) = ws.candidates.binary_search(&(j as u32)) {
                ws.candidates.remove(slot);
            }
            for &i in view.col(j) {
                let i = i as usize;
                ws.cover_count[i] += 1;
                if ws.cover_count[i] == ctx.demand[i] {
                    ws.covered[i] = true;
                    uncovered -= 1;
                    for &jj in view.row(i) {
                        ws.n_uncov[jj as usize] -= 1;
                        ws.gamma_stale[jj as usize] = true;
                    }
                }
            }
        }
    }

    // Redundancy elimination, highest original cost first (lowest index
    // among ties): a column is redundant when every row it covers keeps
    // strictly more covers than its demand. Removing columns only frees
    // group capacity, so the at-most bounds stay satisfied.
    ws.sol_cols.sort_unstable();
    ws.by_priority.clone_from(&ws.sol_cols);
    ws.by_priority.sort_unstable_by(|&x, &y| {
        costs[y as usize]
            .partial_cmp(&costs[x as usize])
            .unwrap_or(Ordering::Equal)
            .then(x.cmp(&y))
    });
    for idx in 0..ws.by_priority.len() {
        let j = ws.by_priority[idx] as usize;
        if view
            .col(j)
            .iter()
            .all(|&i| ws.cover_count[i as usize] > ctx.demand[i as usize])
        {
            ws.selected[j] = false;
            for &i in view.col(j) {
                ws.cover_count[i as usize] -= 1;
            }
        }
    }
    ws.sol_cols.retain(|&j| ws.selected[j as usize]);
    let mut cost = 0.0f64;
    for &j in &ws.sol_cols {
        cost += costs[j as usize];
    }
    Some(cost)
}

/// [`best_greedy_with_scratch`] for the constrained pass: every rule in
/// `rules`, cheapest admissible cover wins.
pub(crate) fn best_greedy_constrained_with_scratch(
    a: &CoverMatrix,
    view: &SparseView,
    c_tilde: &[f64],
    rules: &[GammaRule],
    ctx: &MulticoverCtx,
    ws: &mut GreedyScratch,
) -> Option<(Solution, f64)> {
    let mut best: Option<(Solution, f64)> = None;
    for &rule in rules {
        if let Some(cost) = greedy_pass_constrained(a, view, c_tilde, rule, ctx, ws) {
            match &best {
                Some((_, bc)) if *bc <= cost => {}
                _ => best = Some((ws.extract_solution(), cost)),
            }
        }
    }
    best
}

/// Runs one constrained Lagrangian greedy pass under `cons` (multicover
/// demand + GUB groups) and returns the cover, or `None` when the pass
/// cannot meet demand under the group bounds.
///
/// # Panics
///
/// Panics if `c_tilde.len() != a.num_cols()` or `cons` does not validate
/// against `a` (validate with [`Constraints::validate_for`] first).
///
/// # Example
///
/// ```
/// use cover::{Constraints, CoverMatrix};
/// use ucp_core::greedy::{lagrangian_greedy_constrained, GammaRule};
///
/// let m = CoverMatrix::from_rows(3, vec![vec![0, 1, 2], vec![1, 2]]);
/// let cons = Constraints::new().coverage(vec![2, 1]);
/// let sol = lagrangian_greedy_constrained(&m, m.costs(), GammaRule::Linear, &cons).unwrap();
/// assert!(cons.is_satisfied(&m, &sol));
/// ```
pub fn lagrangian_greedy_constrained(
    a: &CoverMatrix,
    c_tilde: &[f64],
    rule: GammaRule,
    cons: &Constraints,
) -> Option<Solution> {
    assert_eq!(c_tilde.len(), a.num_cols(), "one rating cost per column");
    cons.validate_for(a).expect("constraints fit the instance");
    let ctx = MulticoverCtx::new(a, cons);
    let mut ws = GreedyScratch::new(a);
    greedy_pass_constrained(a, a.sparse(), c_tilde, rule, &ctx, &mut ws)?;
    Some(ws.extract_solution())
}

/// Runs one Lagrangian greedy pass with the given rule.
///
/// `c_tilde` are the Lagrangian costs steering the choice; the returned
/// cover is made irredundant under the matrix's *original* costs. Returns
/// `None` if the matrix has an uncoverable row.
///
/// # Panics
///
/// Panics if `c_tilde.len() != a.num_cols()`.
///
/// # Example
///
/// ```
/// use cover::CoverMatrix;
/// use ucp_core::greedy::{lagrangian_greedy, GammaRule};
///
/// let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1, 2]]);
/// let sol = lagrangian_greedy(&m, m.costs(), GammaRule::Linear).unwrap();
/// assert_eq!(sol.cols(), &[1]); // the middle column covers everything
/// ```
pub fn lagrangian_greedy(a: &CoverMatrix, c_tilde: &[f64], rule: GammaRule) -> Option<Solution> {
    assert_eq!(c_tilde.len(), a.num_cols(), "one rating cost per column");
    let mut ws = GreedyScratch::new(a);
    greedy_pass(a, a.sparse(), c_tilde, rule, &mut ws)?;
    Some(ws.extract_solution())
}

fn rate(
    view: &SparseView,
    c_tilde: &[f64],
    j: usize,
    n_j: usize,
    covered: &[bool],
    log2_table: &[f64],
    rule: GammaRule,
) -> f64 {
    let c = c_tilde[j].max(0.0);
    let nf = n_j as f64;
    match rule {
        GammaRule::Linear => c / nf,
        GammaRule::Log => c / log2_table[n_j],
        GammaRule::LinearLog => c / (nf * log2_table[n_j]),
        GammaRule::Occurrence => {
            let mut weight = 0.0f64;
            for &i in view.col(j) {
                let i = i as usize;
                if covered[i] {
                    continue;
                }
                let occ = view.row(i).len();
                weight += if occ > 1 {
                    1.0 / (occ as f64 - 1.0)
                } else {
                    // Essential row: make its column irresistible.
                    1e9
                };
            }
            c / weight
        }
    }
}

/// [`best_greedy`] over a caller-provided scratch: runs every rule,
/// materialising a `Solution` only when a pass improves on the covers
/// seen so far.
pub(crate) fn best_greedy_with_scratch(
    a: &CoverMatrix,
    view: &SparseView,
    c_tilde: &[f64],
    rules: &[GammaRule],
    ws: &mut GreedyScratch,
) -> Option<(Solution, f64)> {
    let mut best: Option<(Solution, f64)> = None;
    for &rule in rules {
        if let Some(cost) = greedy_pass(a, view, c_tilde, rule, ws) {
            match &best {
                Some((_, bc)) if *bc <= cost => {}
                _ => best = Some((ws.extract_solution(), cost)),
            }
        }
    }
    best
}

/// Runs every rule in `rules` and returns the cheapest cover found (by
/// original cost), or `None` on an uncoverable matrix.
pub fn best_greedy(
    a: &CoverMatrix,
    c_tilde: &[f64],
    rules: &[GammaRule],
) -> Option<(Solution, f64)> {
    let mut ws = GreedyScratch::new(a);
    best_greedy_with_scratch(a, a.sparse(), c_tilde, rules, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cover::GubGroup;

    fn cycle5() -> CoverMatrix {
        CoverMatrix::from_rows(
            5,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
        )
    }

    #[test]
    fn greedy_covers_cycle() {
        let m = cycle5();
        for rule in [
            GammaRule::Linear,
            GammaRule::Log,
            GammaRule::LinearLog,
            GammaRule::Occurrence,
        ] {
            let sol = lagrangian_greedy(&m, m.costs(), rule).expect("coverable");
            assert!(sol.is_feasible(&m), "rule {rule:?}");
            assert_eq!(sol.cost(&m), 3.0, "rule {rule:?} should hit the optimum");
        }
    }

    #[test]
    fn negative_lagrangian_costs_seed_the_solution() {
        let m = cycle5();
        // λ large makes all columns free: everything selected, then the
        // irredundant pass thins it back to a minimal cover.
        let c_tilde = vec![-1.0; 5];
        let sol = lagrangian_greedy(&m, &c_tilde, GammaRule::Linear).unwrap();
        assert!(sol.is_feasible(&m));
        assert_eq!(sol.cost(&m), 3.0);
    }

    #[test]
    fn infeasible_matrix_returns_none() {
        let m = CoverMatrix::from_rows(1, vec![vec![0], vec![]]);
        assert!(lagrangian_greedy(&m, m.costs(), GammaRule::Linear).is_none());
    }

    #[test]
    fn greedy_prefers_cheap_wide_columns() {
        // Column 2 covers both rows; columns 0, 1 cover one each.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 2], vec![1, 2]]);
        let sol = lagrangian_greedy(&m, m.costs(), GammaRule::Linear).unwrap();
        assert_eq!(sol.cols(), &[2]);
    }

    #[test]
    fn occurrence_rule_prioritises_rare_rows() {
        // Row 1 is covered by a single column (1): rule 4 must pick it first
        // even though column 0 covers more rows.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1], vec![0, 2], vec![0, 2]]);
        let sol = lagrangian_greedy(&m, m.costs(), GammaRule::Occurrence).unwrap();
        assert!(sol.contains(1));
        assert!(sol.is_feasible(&m));
    }

    #[test]
    fn pass_cost_matches_the_extracted_cover() {
        let m = CoverMatrix::with_costs(
            4,
            vec![vec![0, 1, 2], vec![1, 3], vec![0, 3], vec![2]],
            vec![3.0, 1.0, 2.0, 2.0],
        );
        let mut ws = GreedyScratch::new(&m);
        let cost = greedy_pass(&m, m.sparse(), m.costs(), GammaRule::Linear, &mut ws).unwrap();
        let sol = ws.extract_solution();
        assert_eq!(cost.to_bits(), sol.cost(&m).to_bits());
        assert!(sol.is_feasible(&m));
    }

    #[test]
    fn best_of_rules_never_worse_than_each() {
        let m = cycle5();
        let (best, cost) = best_greedy(&m, m.costs(), &GammaRule::FAST).unwrap();
        assert!(best.is_feasible(&m));
        for rule in GammaRule::FAST {
            let sol = lagrangian_greedy(&m, m.costs(), rule).unwrap();
            assert!(cost <= sol.cost(&m));
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_passes() {
        // A pass that covers everything must not leak state into the
        // next pass on the same scratch.
        let m = cycle5();
        let view = m.sparse();
        let mut ws = GreedyScratch::new(&m);
        greedy_pass(&m, view, &[-1.0; 5], GammaRule::Linear, &mut ws).unwrap();
        let first = ws.extract_solution();
        greedy_pass(&m, view, m.costs(), GammaRule::Log, &mut ws).unwrap();
        let second = ws.extract_solution();
        let fresh = lagrangian_greedy(&m, m.costs(), GammaRule::Log).unwrap();
        assert_eq!(second, fresh);
        assert!(first.is_feasible(&m));
    }

    #[test]
    fn constrained_pass_with_unit_demand_matches_unate() {
        // b ≡ 1, no groups: the constrained pass must yield the same
        // cover as the unate pass (same picks, same redundancy order).
        let matrices = [
            cycle5(),
            CoverMatrix::with_costs(
                4,
                vec![vec![0, 1, 2], vec![1, 3], vec![0, 3], vec![2]],
                vec![3.0, 1.0, 2.0, 2.0],
            ),
        ];
        let cons = Constraints::new();
        for m in &matrices {
            let ctx = MulticoverCtx::new(m, &cons);
            for rule in GammaRule::FAST {
                let c_tilde: Vec<f64> = (0..m.num_cols())
                    .map(|j| m.cost(j) - 0.7 * (j % 3) as f64)
                    .collect();
                let mut ws = GreedyScratch::new(m);
                let unate_cost = greedy_pass(m, m.sparse(), &c_tilde, rule, &mut ws).unwrap();
                let unate = ws.extract_solution();
                let cons_cost =
                    greedy_pass_constrained(m, m.sparse(), &c_tilde, rule, &ctx, &mut ws).unwrap();
                let constrained = ws.extract_solution();
                assert_eq!(unate, constrained, "rule {rule:?}");
                assert_eq!(unate_cost.to_bits(), cons_cost.to_bits(), "rule {rule:?}");
            }
        }
    }

    #[test]
    fn constrained_pass_meets_multicover_demand() {
        // Row 0 needs two distinct columns; a single wide column is not
        // enough.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 1, 2], vec![2]]);
        let cons = Constraints::new().coverage(vec![2, 1]);
        let sol = lagrangian_greedy_constrained(&m, m.costs(), GammaRule::Linear, &cons).unwrap();
        assert!(sol.len() >= 2);
        assert!(cons.is_satisfied(&m, &sol));
    }

    #[test]
    fn constrained_pass_honours_group_bounds() {
        // Both rows coverable by group {0, 1} alone, but at most one of
        // those columns may be picked: the cover must use column 2.
        let m = CoverMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1, 2]]);
        let cons = Constraints::new().gub_groups(vec![GubGroup::new(vec![0, 1], 1)]);
        let cheap: Vec<f64> = vec![-1.0, -1.0, 5.0];
        let sol = lagrangian_greedy_constrained(&m, &cheap, GammaRule::Linear, &cons).unwrap();
        assert!(cons.is_satisfied(&m, &sol));
        let in_group = sol.cols().iter().filter(|&&j| j < 2).count();
        assert!(in_group <= 1);
    }

    #[test]
    fn constrained_pass_reports_unmeetable_demand() {
        // Row 0 demands two covers but only one column touches it.
        let m = CoverMatrix::from_rows(2, vec![vec![0], vec![0, 1]]);
        let cons = Constraints::new().coverage(vec![2, 1]);
        let ctx = MulticoverCtx::new(&m, &cons);
        let mut ws = GreedyScratch::new(&m);
        assert!(greedy_pass_constrained(
            &m,
            m.sparse(),
            m.costs(),
            GammaRule::Linear,
            &ctx,
            &mut ws
        )
        .is_none());
    }

    #[test]
    fn constrained_redundancy_keeps_demand_satisfied() {
        // Seed everything (all c̃ ≤ 0): the redundancy pass must keep at
        // least b_i covers per row while thinning the rest.
        let m = CoverMatrix::with_costs(
            4,
            vec![vec![0, 1, 2, 3], vec![1, 2], vec![0, 3]],
            vec![1.0, 2.0, 3.0, 4.0],
        );
        let cons = Constraints::new().coverage(vec![2, 1, 1]);
        let sol = lagrangian_greedy_constrained(&m, &[-1.0; 4], GammaRule::Linear, &cons).unwrap();
        assert!(cons.is_satisfied(&m, &sol));
    }

    #[test]
    fn scratch_pass_matches_the_dense_reference() {
        // The lookup-table ratings, compacting candidate list,
        // on-demand uncovered counts and single-pass redundancy
        // elimination must reproduce the recompute-everything reference
        // exactly — covers included — on uniform and non-uniform costs.
        use crate::reference::lagrangian_greedy_dense;
        let matrices = [
            cycle5(),
            CoverMatrix::from_rows(
                6,
                (0..6).map(|i| vec![i, (i + 1) % 6, (i + 3) % 6]).collect(),
            ),
            CoverMatrix::with_costs(
                4,
                vec![vec![0, 1, 2], vec![1, 3], vec![0, 3], vec![2]],
                vec![3.0, 1.0, 2.0, 2.0],
            ),
        ];
        for (mi, m) in matrices.iter().enumerate() {
            for rule in [
                GammaRule::Linear,
                GammaRule::Log,
                GammaRule::LinearLog,
                GammaRule::Occurrence,
            ] {
                // Lagrangian costs with negatives to exercise seeding and
                // the redundancy pass.
                let c_tilde: Vec<f64> = (0..m.num_cols())
                    .map(|j| m.cost(j) - 0.7 * (j % 3) as f64)
                    .collect();
                let live = lagrangian_greedy(m, &c_tilde, rule);
                let dense = lagrangian_greedy_dense(m, &c_tilde, rule);
                assert_eq!(live, dense, "matrix {mi}, rule {rule:?}");
            }
        }
    }
}
