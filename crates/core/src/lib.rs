//! `ZDD_SCG`: the Lagrangian constructive heuristic for unate covering from
//! *"An Efficient Heuristic Approach to Solve the Unate Covering Problem"*
//! (Cordone, Ferrandi, Sciuto, Wolfler Calvo — DATE 2000).
//!
//! The solver combines:
//!
//! * [`relax`] — the primal Lagrangian relaxation `(LP)` of the covering ILP:
//!   Lagrangian costs `c̃ = c − A'λ`, its trivial integer optimum and the
//!   covering-violation subgradient (§3.1–3.2 of the paper);
//! * [`dual`] — the dual problem `(D)`, the **dual ascent** heuristic and the
//!   dual Lagrangian relaxation `(LD)` whose value upper-bounds `z*_P`
//!   (§3.3);
//! * [`greedy`] — four Lagrangian-cost-driven greedy primal heuristics
//!   (§3.5);
//! * [`subgradient`] — the two-sided subgradient scheme tightening `λ` and
//!   `μ` against each other (§3.2–3.3, eq. 2);
//! * [`penalty`] — Lagrangian penalties (eqs. 3–4) and dual penalties
//!   (eqs. 5–6), the generalisation of the limit-bound theorem (§3.6);
//! * [`bounds`] — the four lower bounds of Proposition 1 side by side;
//! * [`scg`] — the full constructive driver of Fig. 2 with its stochastic
//!   restarts ([`Scg`]);
//! * [`restart`] — the shared-core parallel restart engine scheduling
//!   those runs over worker threads without changing the answer;
//! * [`request`] — the unified solve API: build a [`SolveRequest`]
//!   (instance + [`Preset`]/options + deadline + seed + probe +
//!   [`CancelFlag`]) and pass it to [`Scg::run`].
//!
//! # Example
//!
//! ```
//! use cover::CoverMatrix;
//! use ucp_core::{Scg, SolveRequest};
//!
//! let m = CoverMatrix::from_rows(5, vec![
//!     vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0],
//! ]);
//! let outcome = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
//! assert!(outcome.solution.is_feasible(&m));
//! assert_eq!(outcome.cost, 3.0);
//! assert!(outcome.proven_optimal); // ⌈2.5⌉ = 3 certificate
//! ```

mod ascent;
pub mod bounds;
pub mod checkpoint;
pub mod dual;
pub mod greedy;
pub mod metrics;
pub mod penalty;
#[doc(hidden)]
pub mod reference;
pub mod relax;
pub mod request;
pub mod restart;
pub mod scg;
pub mod subgradient;
pub mod wire;

pub use checkpoint::{SolverCheckpoint, CHECKPOINT_SCHEMA};
pub use cover::{
    ConstraintError, ConstraintKind, Constraints, GubGroup, Halt, HaltReason, ZddOptions,
    ZddOverflow,
};
pub use metrics::SolveMetrics;
pub use request::{CancelFlag, Preset, SolveError, SolveRequest};
pub use restart::{restart_seed, splitmix64};
pub use scg::{Scg, ScgOptions, ScgOutcome};
pub use subgradient::{
    subgradient_ascent, subgradient_ascent_constrained, subgradient_ascent_constrained_probed,
    subgradient_ascent_probed, HistoryPoint, SubgradientOptions, SubgradientResult,
};
pub use wire::{
    JobResultDto, JobSpec, JobState, JobStatusDto, SubmitBody, WireCode, WireError, WIRE_API,
    WIRE_API_V1,
};
