//! Governed-mode halt latency: with a failpoint stalling every implicit
//! op boundary, a deadline or a cancel raised mid-reduction must surface
//! as [`SolveError::Expired`] / [`SolveError::Cancelled`] within one op
//! boundary — the solve never ploughs on through a dead budget.

#![cfg(feature = "failpoints")]

use std::time::{Duration, Instant};

use ucp_core::{CancelFlag, Scg, ScgOptions, SolveError, SolveRequest};
use ucp_failpoints::{configure, FailConfig, FailScenario};

fn cyclic(n: usize) -> cover::CoverMatrix {
    let mut rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    rows.push((0..n).step_by(2).collect());
    rows.push((0..n).step_by(3).collect());
    cover::CoverMatrix::from_rows(n, rows)
}

#[test]
fn deadline_mid_implicit_expires_within_one_op_boundary() {
    let _scenario = FailScenario::setup();
    configure("cover::implicit_op", FailConfig::sleep_ms(100));
    let m = cyclic(12);
    let started = Instant::now();
    let res = Scg::run(
        SolveRequest::for_matrix(&m)
            .options(ScgOptions::default())
            .deadline(Duration::from_millis(30)),
    );
    let elapsed = started.elapsed();
    assert_eq!(res.unwrap_err(), SolveError::Expired);
    // Budget (30ms) + at most one stalled op (100ms) + slack. If halt
    // checks were skipped between ops this would run for seconds.
    assert!(
        elapsed < Duration::from_millis(1500),
        "expiry took {elapsed:?}; halt not checked at op boundaries?"
    );
}

#[test]
fn cancel_mid_implicit_aborts_within_one_op_boundary() {
    let _scenario = FailScenario::setup();
    configure("cover::implicit_op", FailConfig::sleep_ms(50));
    let m = cyclic(12);
    let flag = CancelFlag::new();
    let canceller = {
        let flag = flag.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            flag.cancel();
        })
    };
    let started = Instant::now();
    let res = Scg::run(
        SolveRequest::for_matrix(&m)
            .options(ScgOptions::default())
            .cancel(&flag),
    );
    let elapsed = started.elapsed();
    canceller.join().unwrap();
    assert_eq!(res.unwrap_err(), SolveError::Cancelled);
    assert!(
        elapsed < Duration::from_millis(1500),
        "cancel took {elapsed:?}; halt not checked at op boundaries?"
    );
}
