//! Property tests of the Lagrangian machinery against independent oracles:
//! the LP relaxation (exact simplex) and brute-force integer optima.

use cover::CoverMatrix;
use lp::DenseLp;
use proptest::prelude::*;
use ucp_core::dual::{dual_ascent, is_dual_feasible};
use ucp_core::penalty::{dual_penalties, lagrangian_penalties};
use ucp_core::relax::eval_primal;
use ucp_core::{subgradient_ascent, SubgradientOptions};

fn brute(m: &CoverMatrix) -> f64 {
    let n = m.num_cols();
    let mut best = f64::INFINITY;
    'mask: for mask in 0u32..(1 << n) {
        for row in m.rows() {
            if !row.iter().any(|&j| mask >> j & 1 == 1) {
                continue 'mask;
            }
        }
        let c: f64 = (0..n)
            .filter(|&j| mask >> j & 1 == 1)
            .map(|j| m.cost(j))
            .sum();
        best = best.min(c);
    }
    best
}

/// Brute force with forced inclusions/exclusions.
fn brute_restricted(m: &CoverMatrix, fix_in: &[usize], fix_out: &[usize]) -> f64 {
    let n = m.num_cols();
    let mut best = f64::INFINITY;
    'mask: for mask in 0u32..(1 << n) {
        for &j in fix_in {
            if mask >> j & 1 == 0 {
                continue 'mask;
            }
        }
        for &j in fix_out {
            if mask >> j & 1 == 1 {
                continue 'mask;
            }
        }
        for row in m.rows() {
            if !row.iter().any(|&j| mask >> j & 1 == 1) {
                continue 'mask;
            }
        }
        let c: f64 = (0..n)
            .filter(|&j| mask >> j & 1 == 1)
            .map(|j| m.cost(j))
            .sum();
        best = best.min(c);
    }
    best
}

fn instance_strategy() -> impl Strategy<Value = CoverMatrix> {
    (3usize..=9).prop_flat_map(|cols| {
        let row = prop::collection::btree_set(0..cols, 1..=cols.min(4));
        let rows = prop::collection::vec(row, 2..=10);
        let costs = prop::collection::vec(1u8..=4, cols);
        (rows, costs).prop_map(move |(rows, costs)| {
            CoverMatrix::with_costs(
                cols,
                rows.into_iter().map(|r| r.into_iter().collect()).collect(),
                costs.into_iter().map(f64::from).collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lagrangian_bound_below_lp_optimum(m in instance_strategy()) {
        let r = subgradient_ascent(&m, &SubgradientOptions::default(), None, None);
        let lp = DenseLp::covering(m.num_cols(), m.rows(), m.costs())
            .solve()
            .expect("coverable");
        prop_assert!(r.lb <= lp.objective + 1e-5,
            "Lagrangian LB {} exceeds LP optimum {}", r.lb, lp.objective);
        // And the heuristic solution is integer-feasible above the LP.
        prop_assert!(r.best_cost >= lp.objective - 1e-6);
    }

    #[test]
    fn lagrangian_value_valid_for_any_multipliers(
        m in instance_strategy(),
        raw in prop::collection::vec(0.0f64..3.0, 10)
    ) {
        // z_LP(λ) ≤ z* for arbitrary non-negative λ — not just optimised ones.
        let lambda: Vec<f64> = (0..m.num_rows()).map(|i| raw[i % raw.len()]).collect();
        let eval = eval_primal(&m, &lambda);
        let opt = brute(&m);
        prop_assert!(eval.value <= opt + 1e-9,
            "z_LP(λ) = {} exceeds optimum {}", eval.value, opt);
    }

    #[test]
    fn dual_ascent_always_feasible_and_valid(m in instance_strategy()) {
        let d = dual_ascent(&m, m.costs(), None);
        prop_assert!(is_dual_feasible(&m, m.costs(), &d.m));
        let opt = brute(&m);
        prop_assert!(d.value <= opt + 1e-9,
            "dual value {} exceeds optimum {}", d.value, opt);
    }

    #[test]
    fn lagrangian_penalties_preserve_strictly_better_solutions(m in instance_strategy()) {
        // The contract of eqs. (3)-(4): every solution *strictly better than
        // the incumbent value ub* survives the fixes. With ub = opt + 1 the
        // optimum itself must survive; with ub = opt only ties may be lost,
        // so the restricted optimum can only grow.
        let opt = brute(&m);
        let r = subgradient_ascent(&m, &SubgradientOptions::default(), None, None);
        let pen = lagrangian_penalties(&r.c_tilde, r.lb, opt + 1.0);
        let restricted = brute_restricted(&m, &pen.fix_in, &pen.fix_out);
        prop_assert_eq!(restricted, opt,
            "penalties destroyed a strictly-better solution: fix_in {:?}, fix_out {:?}",
            pen.fix_in, pen.fix_out);

        let pen_tight = lagrangian_penalties(&r.c_tilde, r.lb, opt);
        let restricted_tight = brute_restricted(&m, &pen_tight.fix_in, &pen_tight.fix_out);
        prop_assert!(restricted_tight >= opt - 1e-9,
            "restricted problem beat the optimum?!");
    }

    #[test]
    fn dual_penalties_preserve_strictly_better_solutions(m in instance_strategy()) {
        let opt = brute(&m);
        let base = dual_ascent(&m, m.costs(), None).m;
        let pen = dual_penalties(&m, &base, opt + 1.0);
        if pen.no_improvement_possible {
            // Would mean even opt+1 is unreachable — impossible since the
            // optimum costs opt < opt + 1.
            prop_assert!(false, "no_improvement_possible against ub = opt + 1");
        }
        let restricted = brute_restricted(&m, &pen.fix_in, &pen.fix_out);
        prop_assert_eq!(restricted, opt,
            "dual penalties destroyed a strictly-better solution: fix_in {:?}, fix_out {:?}",
            pen.fix_in, pen.fix_out);
    }

    #[test]
    fn warm_start_never_invalidates_bound(m in instance_strategy()) {
        // A warm start from garbage multipliers must still give a valid LB.
        let garbage: Vec<f64> = (0..m.num_rows()).map(|i| (i % 7) as f64).collect();
        let r = subgradient_ascent(&m, &SubgradientOptions::default(), Some(&garbage), None);
        let opt = brute(&m);
        prop_assert!(r.lb <= opt + 1e-9);
        if let Some(sol) = &r.best_solution {
            prop_assert!(sol.is_feasible(&m));
        }
    }
}
