//! Integration tests for the solver's telemetry stream: the event
//! sequence a [`RecordingProbe`] captures from a full `ZDD_SCG` solve
//! must be structurally well-formed (LIFO-balanced phases, per-ascent
//! monotone lower bounds) and the phase wall-clock breakdown must
//! account for essentially all of the solve time.

use cover::CoverMatrix;
use ucp_core::{Scg, SolveRequest};
use ucp_telemetry::{Event, Phase, RecordingProbe};

/// An odd cycle `C_n` as a covering matrix: row `i` is covered by
/// columns `i` and `i+1 (mod n)`, all costs 1. Irreducible, but the
/// Lagrangian bound is tight (`⌈n/2⌉`), so the solve usually certifies
/// optimality right after the initial ascent.
fn odd_cycle(n: usize) -> CoverMatrix {
    assert!(n % 2 == 1);
    CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
}

/// The Steiner triple system STS(9) (the 12 lines of AG(2,3)) as a
/// point-cover problem: hit every line with as few of the 9 points as
/// possible. The matrix is a pure cyclic core (no dominance, no
/// essentials) with a real duality gap — the LP/Lagrangian bound is 3
/// but the optimum cover needs 5 points — so the solver cannot certify
/// optimality at the bound and every constructive restart runs. This
/// makes it the right fixture for asserting on the full event stream.
fn sts9() -> CoverMatrix {
    let lines = vec![
        vec![0, 1, 2],
        vec![3, 4, 5],
        vec![6, 7, 8],
        vec![0, 3, 6],
        vec![1, 4, 7],
        vec![2, 5, 8],
        vec![0, 4, 8],
        vec![1, 5, 6],
        vec![2, 3, 7],
        vec![0, 5, 7],
        vec![1, 3, 8],
        vec![2, 4, 6],
    ];
    CoverMatrix::from_rows(9, lines)
}

fn solve_recorded(m: &CoverMatrix) -> (RecordingProbe, ucp_core::ScgOutcome) {
    let mut probe = RecordingProbe::new();
    let out = Scg::run(SolveRequest::for_matrix(m).probe(&mut probe)).unwrap();
    (probe, out)
}

#[test]
fn phases_are_lifo_balanced() {
    let (probe, out) = solve_recorded(&sts9());
    assert!(!out.infeasible);
    let mut stack: Vec<Phase> = Vec::new();
    let mut pairs = 0usize;
    for te in probe.events() {
        match te.event {
            Event::PhaseBegin { phase } => stack.push(phase),
            Event::PhaseEnd { phase, .. } => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("PhaseEnd({phase:?}) with no open phase"));
                assert_eq!(open, phase, "phases must close in LIFO order");
                pairs += 1;
            }
            _ => {}
        }
    }
    assert!(
        stack.is_empty(),
        "unclosed phases at end of solve: {stack:?}"
    );
    assert!(pairs >= Phase::ALL.len(), "expected every phase to appear");
}

#[test]
fn lower_bound_is_monotone_within_each_ascent() {
    let (probe, _) = solve_recorded(&sts9());
    // Each subgradient ascent (the initial one and the per-run nested
    // ones, which work on different reduced subproblems) reports its own
    // running-best lower bound; within one ascent it never decreases.
    let mut prev: Option<f64> = None;
    let mut ascents = 0usize;
    let mut iters = 0usize;
    for te in probe.events() {
        match te.event {
            Event::PhaseBegin {
                phase: Phase::Subgradient,
            } => {
                prev = None;
                ascents += 1;
            }
            Event::SubgradientIter { lb, .. } => {
                if let Some(p) = prev {
                    assert!(
                        lb >= p,
                        "lower bound regressed within an ascent: {p} -> {lb}"
                    );
                }
                prev = Some(lb);
                iters += 1;
            }
            _ => {}
        }
    }
    assert!(ascents >= 1, "no subgradient phase recorded");
    assert!(iters > 0, "no subgradient iterations recorded");
}

#[test]
fn restarts_bracket_and_track_the_incumbent() {
    let (probe, out) = solve_recorded(&sts9());
    let mut open: Option<usize> = None;
    let mut runs = 0usize;
    let mut last_best = f64::INFINITY;
    for te in probe.events() {
        match te.event {
            Event::RestartBegin { run, .. } => {
                assert!(open.is_none(), "restart {run} began inside another");
                open = Some(run);
            }
            Event::RestartEnd {
                run,
                cost,
                best_cost,
                ..
            } => {
                assert_eq!(open.take(), Some(run), "unmatched RestartEnd");
                assert!(best_cost <= cost, "incumbent worse than the run's cover");
                assert!(best_cost <= last_best, "incumbent cost increased");
                last_best = best_cost;
                runs += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_none());
    assert_eq!(runs, out.iterations, "one begin/end pair per restart");
    assert_eq!(last_best, out.cost, "final incumbent matches the outcome");
}

#[test]
fn phase_breakdown_accounts_for_the_solve() {
    let (probe, out) = solve_recorded(&odd_cycle(101));
    let total = out.total_time.as_secs_f64();
    let sum = out.phase_times.total();
    // Acceptance bar from the telemetry design: the six phases tile the
    // solve, so their sum stays within 5% of the measured wall clock.
    assert!(
        (sum - total).abs() <= 0.05 * total.max(1e-6),
        "phase sum {sum}s vs solve total {total}s"
    );
    // The probe's reconstruction from PhaseEnd events agrees with the
    // breakdown the outcome carries (nested ascent seconds are *moved*
    // between phases in the outcome, so totals — not slots — match).
    let rebuilt = probe.phase_times();
    assert!(
        (rebuilt.total() - sum).abs() <= 0.05 * total.max(1e-6),
        "probe-rebuilt total {} vs outcome total {sum}",
        rebuilt.total()
    );
}

#[test]
fn noop_and_recording_solves_agree() {
    let m = odd_cycle(21);
    let plain = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
    let (_, recorded) = solve_recorded(&m);
    // Instrumentation must not perturb the algorithm: same seed, same
    // deterministic trajectory, same answer.
    assert_eq!(plain.cost, recorded.cost);
    assert_eq!(plain.lower_bound, recorded.lower_bound);
    assert_eq!(plain.iterations, recorded.iterations);
    assert_eq!(
        plain.subgradient_iterations,
        recorded.subgradient_iterations
    );
    assert_eq!(plain.solution.cols(), recorded.solution.cols());
}
