//! Table 3: ZDD_SCG vs the exact (scherzo-like) solver on the *difficult
//! cyclic* instances: `Sol(LB)` / `T(s)` / `MaxIter` against the exact
//! optimum and its time.
//!
//! Expected shape (paper): the heuristic matches or comes within a unit of
//! every optimum the exact solver can close, in a fraction of the time; on
//! instances the exact solver cannot close within budget ZDD_SCG's answer
//! (tagged `H`, like the paper's best-known-heuristic marks) is the best
//! available.
//!
//! Usage: `cargo run -p ucp-bench --release --bin table3 [--quick]`

use std::time::Duration;
use ucp_bench::{finish_log, run_exact, run_scg, scg_fields, secs, BenchLog, Table};
use ucp_core::{Preset, ScgOptions};
use workloads::suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        Preset::Fast.options()
    } else {
        ScgOptions::default()
    };
    let (nodes, budget) = if quick {
        (200_000u64, Duration::from_secs(2))
    } else {
        (5_000_000, Duration::from_secs(60))
    };
    let mut t = Table::new([
        "Name",
        "SCG Sol(LB)",
        "SCG T(s)",
        "MaxIter",
        "Exact Sol",
        "Exact T(s)",
    ]);
    let mut log = BenchLog::create("table3").expect("create results/table3.jsonl");
    let mut matched = 0usize;
    let mut closed = 0usize;
    for inst in suite::difficult_cyclic() {
        let scg = run_scg(&inst.matrix, opts);
        let exact = run_exact(&inst.matrix, nodes, budget);
        log.row("table3_row", |o| {
            o.field_str("instance", &inst.name);
            scg_fields(o, &scg);
            o.field_f64("exact_cost", exact.cost);
            o.field_bool("exact_optimal", exact.optimal);
            o.field_u64("exact_nodes", exact.nodes);
            o.field_f64("exact_seconds", exact.elapsed.as_secs_f64());
        });
        let sol = if scg.proven_optimal {
            format!("{}*", scg.cost)
        } else {
            format!("{}({})", scg.cost, scg.lower_bound)
        };
        let exact_sol = if exact.optimal {
            closed += 1;
            if (exact.cost - scg.cost).abs() < 1e-9 {
                matched += 1;
            }
            format!("{}", exact.cost)
        } else {
            format!("{}H", exact.cost) // budget-truncated: upper bound only
        };
        t.row([
            inst.name.clone(),
            sol,
            secs(scg.total_time),
            scg.iterations.to_string(),
            exact_sol,
            secs(exact.elapsed),
        ]);
    }
    println!("Table 3 — difficult cyclic vs exact (`*` proven by SCG's own bound, `H` = exact budget exhausted)");
    println!("{}", t.render());
    println!("SCG matched the exact optimum on {matched}/{closed} closed instances");
    finish_log(log);
}
