//! Table 2: ZDD_SCG vs the espresso-like heuristics on the *challenging*
//! instances (per-instance Sol / CC(s) / T(s), as in the paper).
//!
//! Expected shape (paper): on the instances where both land on the same
//! cover, ZDD_SCG certifies it optimal; everywhere else ZDD_SCG's cover is
//! smaller; Espresso remains much faster.
//!
//! Usage: `cargo run -p ucp-bench --release --bin table2 [--quick]`

use solvers::EspressoMode;
use ucp_bench::{finish_log, run_espresso, run_scg, scg_fields, secs, BenchLog, Table};
use ucp_core::{Preset, ScgOptions};
use workloads::suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        Preset::Fast.options()
    } else {
        ScgOptions::default()
    };
    let mut log = BenchLog::create("table2").expect("create results/table2.jsonl");
    let mut t = Table::new([
        "Name",
        "Sol",
        "CC(s)",
        "T(s)",
        "Core",
        "Espr Sol",
        "Espr T(s)",
        "Strong Sol",
        "Strong T(s)",
    ]);
    let mut wins = 0usize;
    let mut ties = 0usize;
    let mut losses = 0usize;
    for inst in suite::challenging() {
        let scg = run_scg(&inst.matrix, opts);
        let (en, tn) = run_espresso(&inst.matrix, EspressoMode::Normal)
            .unwrap_or_else(|e| panic!("espresso (normal) failed on {}: {e}", inst.name));
        let (es, ts) = run_espresso(&inst.matrix, EspressoMode::Strong)
            .unwrap_or_else(|e| panic!("espresso (strong) failed on {}: {e}", inst.name));
        let best_esp = en.min(es);
        log.row("table2_row", |o| {
            o.field_str("instance", &inst.name);
            scg_fields(o, &scg);
            o.field_f64("espresso_cost", en);
            o.field_f64("espresso_seconds", tn.as_secs_f64());
            o.field_f64("espresso_strong_cost", es);
            o.field_f64("espresso_strong_seconds", ts.as_secs_f64());
        });
        if scg.cost < best_esp {
            wins += 1;
        } else if scg.cost == best_esp {
            ties += 1;
        } else {
            losses += 1;
        }
        let sol = format!("{}{}", scg.cost, if scg.proven_optimal { "*" } else { "" });
        t.row([
            inst.name.clone(),
            sol,
            secs(scg.cc_time),
            secs(scg.total_time),
            format!("{}x{}", scg.core_rows, scg.core_cols),
            format!("{en}"),
            secs(tn),
            format!("{es}"),
            secs(ts),
        ]);
    }
    println!("Table 2 — challenging problems (a * marks a certified optimum)");
    println!("{}", t.render());
    println!("ZDD_SCG vs best espresso-like: {wins} better, {ties} equal, {losses} worse");
    finish_log(log);
}
