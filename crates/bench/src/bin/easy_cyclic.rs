//! §5 Experiment 1: the 49 *easy cyclic* instances.
//!
//! The paper reports: ZDD_SCG solves all 49 to optimality, total cost 5225
//! against a total Lagrangian lower bound of 5213 (gap 0.22%); Espresso
//! totals 5330 (normal) and 5281 (strong). This binary regenerates the same
//! aggregate row on the synthetic easy-cyclic suite: the expected *shape* is
//! `ZDD_SCG total ≤ strong ≤ normal`, with a sub-percent Lagrangian gap and
//! (almost) all instances certified optimal.
//!
//! Usage: `cargo run -p ucp-bench --release --bin easy_cyclic [--quick]`

use solvers::EspressoMode;
use std::time::Duration;
use ucp_bench::{run_espresso, run_exact, run_scg, secs, Table};
use ucp_core::{Preset, ScgOptions};
use workloads::suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let instances = suite::easy_cyclic();
    let opts = if quick {
        Preset::Fast.options()
    } else {
        ScgOptions::default()
    };

    let mut total_scg = 0.0;
    let mut total_lb = 0.0;
    let mut total_norm = 0.0;
    let mut total_strong = 0.0;
    let mut total_opt = 0.0;
    let mut proven = 0usize;
    let mut exact_known = 0usize;
    let mut scg_hits_opt = 0usize;
    let mut t_scg = Duration::ZERO;
    let mut t_norm = Duration::ZERO;
    let mut t_strong = Duration::ZERO;

    for inst in &instances {
        let scg = run_scg(&inst.matrix, opts);
        let (en, tn) = run_espresso(&inst.matrix, EspressoMode::Normal)
            .unwrap_or_else(|e| panic!("espresso (normal) failed on {}: {e}", inst.name));
        let (es, ts) = run_espresso(&inst.matrix, EspressoMode::Strong)
            .unwrap_or_else(|e| panic!("espresso (strong) failed on {}: {e}", inst.name));
        let exact = run_exact(
            &inst.matrix,
            if quick { 200_000 } else { 2_000_000 },
            Duration::from_secs(if quick { 2 } else { 20 }),
        );
        total_scg += scg.cost;
        total_lb += scg.lower_bound;
        total_norm += en;
        total_strong += es;
        t_scg += scg.total_time;
        t_norm += tn;
        t_strong += ts;
        if scg.proven_optimal {
            proven += 1;
        }
        if exact.optimal {
            exact_known += 1;
            total_opt += exact.cost;
            if (scg.cost - exact.cost).abs() < 1e-9 {
                scg_hits_opt += 1;
            }
        }
    }

    let mut t = Table::new(["quantity", "value"]);
    t.row(["instances", &instances.len().to_string()]);
    t.row(["ZDD_SCG total cost", &format!("{total_scg:.0}")]);
    t.row(["ZDD_SCG total lower bound", &format!("{total_lb:.0}")]);
    t.row([
        "gap to lower bound",
        &format!("{:.2}%", 100.0 * (total_scg - total_lb) / total_lb.max(1.0)),
    ]);
    t.row([
        "certified optimal",
        &format!("{proven}/{}", instances.len()),
    ]);
    t.row([
        "matches exact optimum",
        &format!("{scg_hits_opt}/{exact_known} (of those B&B closed)"),
    ]);
    t.row(["sum of exact optima", &format!("{total_opt:.0}")]);
    t.row(["Espresso-like total", &format!("{total_norm:.0}")]);
    t.row(["Espresso-like strong total", &format!("{total_strong:.0}")]);
    t.row(["ZDD_SCG time (s)", &secs(t_scg)]);
    t.row(["Espresso-like time (s)", &secs(t_norm)]);
    t.row(["Espresso-like strong time (s)", &secs(t_strong)]);
    println!("Experiment 1 — easy cyclic aggregate (paper: 5225 vs LB 5213, gap 0.22%; Espresso 5330 / strong 5281)");
    println!("{}", t.render());

    let shape_holds = total_scg <= total_strong && total_strong <= total_norm;
    println!(
        "shape check (SCG ≤ strong ≤ normal): {}",
        if shape_holds { "HOLDS" } else { "VIOLATED" }
    );
}
