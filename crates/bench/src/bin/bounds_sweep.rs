//! §3.4 as an empirical table: the five lower-bounding techniques side by
//! side on the difficult-cyclic suite.
//!
//! Columns: the maximal-independent-set bound, plain dual ascent, the
//! Lagrangian subgradient bound, the Aura-style incrementally strengthened
//! MIS bound, and the exact LP relaxation (where the simplex is tractable),
//! against the best upper bound known (ZDD_SCG's cover).
//!
//! Expected shape: `MIS ≤ DA ≤ Lagr ≤ LP` (Proposition 1), with the
//! Lagrangian bound close to the LP bound at a fraction of the cost.
//!
//! Usage: `cargo run -p ucp-bench --release --bin bounds_sweep`

use lp::DenseLp;
use solvers::{incremental_mis_bound, IncrementalOptions};
use ucp_bench::{run_scg, Table};
use ucp_core::bounds::bounds_report;
use ucp_core::Preset;
use workloads::suite;

fn main() {
    let mut t = Table::new([
        "Name", "LB_MIS", "LB_DA", "LB_Lagr", "LB_MIS+", "LB_LR", "UB(SCG)",
    ]);
    let mut chain_ok = true;
    for inst in suite::difficult_cyclic() {
        let m = &inst.matrix;
        let b = bounds_report(m);
        let inc = incremental_mis_bound(m, &IncrementalOptions::default());
        let lr = if m.num_rows() <= 400 {
            DenseLp::covering(m.num_cols(), m.rows(), m.costs())
                .solve()
                .map(|s| s.objective)
                .ok()
        } else {
            None
        };
        let scg = run_scg(m, Preset::Fast.options());
        chain_ok &= b.satisfies_proposition_1();
        if let Some(lr) = lr {
            chain_ok &= b.lagrangian <= lr + 1e-5;
        }
        t.row([
            inst.name.clone(),
            format!("{:.0}", b.mis),
            format!("{:.1}", b.dual_ascent),
            format!("{:.1}", b.lagrangian),
            format!("{inc:.0}"),
            lr.map_or("-".into(), |v| format!("{v:.1}")),
            format!("{}", scg.cost),
        ]);
    }
    println!("Lower-bound sweep — difficult cyclic suite (Proposition 1 chain)");
    println!("{}", t.render());
    println!(
        "Proposition 1 chain (MIS ≤ DA ≤ Lagr ≤ LR): {}",
        if chain_ok { "HOLDS" } else { "VIOLATED" }
    );
}
