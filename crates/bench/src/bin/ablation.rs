//! Ablations over the design choices `DESIGN.md` calls out: the rating
//! weight `α`, the restart count `NumIter`, the dual-penalty budget, and the
//! implicit reduction phase.
//!
//! Each configuration runs the full difficult-cyclic suite; the table
//! reports total cover cost, how many instances were certified optimal, and
//! total time — making the contribution of every ingredient visible.
//!
//! Usage: `cargo run -p ucp-bench --release --bin ablation [--quick]`

use cover::CoreOptions;
use std::time::Duration;
use ucp_bench::{run_scg, secs, Table};
use ucp_core::{Preset, ScgOptions};
use workloads::suite;

fn run(label: &str, opts: ScgOptions, t: &mut Table) {
    let mut total = 0.0;
    let mut lb = 0.0;
    let mut proven = 0usize;
    let mut time = Duration::ZERO;
    let instances = suite::difficult_cyclic();
    for inst in &instances {
        let out = run_scg(&inst.matrix, opts);
        total += out.cost;
        lb += out.lower_bound;
        proven += usize::from(out.proven_optimal);
        time += out.total_time;
    }
    t.row([
        label.to_string(),
        format!("{total:.0}"),
        format!("{lb:.0}"),
        format!("{proven}/{}", instances.len()),
        secs(time),
    ]);
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let base = if quick {
        Preset::Fast.options()
    } else {
        ScgOptions::default()
    };
    let mut t = Table::new([
        "configuration",
        "total cost",
        "total LB",
        "certified",
        "T(s)",
    ]);

    run("baseline (α=2, NumIter=4, DualPen=100)", base, &mut t);
    for alpha in [0.0, 1.0, 4.0] {
        run(&format!("α={alpha}"), ScgOptions { alpha, ..base }, &mut t);
    }
    for num_iter in [1usize, 2, 8] {
        run(
            &format!("NumIter={num_iter}"),
            ScgOptions { num_iter, ..base },
            &mut t,
        );
    }
    run(
        "dual penalties off",
        ScgOptions {
            dual_pen_limit: 0,
            ..base
        },
        &mut t,
    );
    run(
        "implicit phase off",
        ScgOptions {
            core: CoreOptions {
                use_implicit: false,
                ..CoreOptions::default()
            },
            ..base
        },
        &mut t,
    );
    run(
        "short subgradient (60 iters)",
        ScgOptions {
            subgradient: ucp_core::SubgradientOptions {
                max_iters: 60,
                ..base.subgradient
            },
            ..base
        },
        &mut t,
    );

    println!("Ablations over the difficult-cyclic suite");
    println!("{}", t.render());
}
