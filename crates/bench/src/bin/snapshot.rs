//! `snapshot` — one-shot performance snapshot of the `ZDD_SCG` solver.
//!
//! Runs the difficult-cyclic suite and writes `results/BENCH_scg.json`, a
//! single JSON document with per-instance cost / lower bound / wall time /
//! phase breakdown plus aggregate totals — the file a CI job can archive or
//! diff to track solver performance over time.
//!
//! Usage: `cargo run -p ucp-bench --release --bin snapshot [--quick]`

use std::fs;
use ucp_bench::{run_scg, scg_fields};
use ucp_core::ScgOptions;
use ucp_telemetry::JsonObj;
use workloads::suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        ScgOptions::fast()
    } else {
        ScgOptions::default()
    };
    let mut runs: Vec<String> = Vec::new();
    let mut total_seconds = 0.0f64;
    let mut certified = 0usize;
    for inst in suite::difficult_cyclic() {
        let out = run_scg(&inst.matrix, opts);
        total_seconds += out.total_time.as_secs_f64();
        if out.proven_optimal {
            certified += 1;
        }
        let mut o = JsonObj::new();
        o.field_str("instance", &inst.name);
        o.field_u64("rows", inst.matrix.num_rows() as u64);
        o.field_u64("cols", inst.matrix.num_cols() as u64);
        scg_fields(&mut o, &out);
        runs.push(o.finish());
        println!(
            "{:>10}  cost {:>6}  lb {:>8.2}  {:>7.3}s",
            inst.name,
            out.cost,
            out.lower_bound,
            out.total_time.as_secs_f64()
        );
    }
    let mut doc = JsonObj::new();
    doc.field_str("schema", "ucp-bench-snapshot/1");
    doc.field_str("preset", if quick { "fast" } else { "default" });
    doc.field_u64("instances", runs.len() as u64);
    doc.field_u64("certified_optimal", certified as u64);
    doc.field_f64("total_seconds", total_seconds);
    doc.field_raw("runs", &format!("[{}]", runs.join(",")));
    fs::create_dir_all("results").expect("create results/");
    fs::write("results/BENCH_scg.json", doc.finish() + "\n").expect("write results/BENCH_scg.json");
    println!(
        "snapshot: {} instances, {certified} certified optimal, {total_seconds:.2}s total -> results/BENCH_scg.json",
        runs.len()
    );
}
