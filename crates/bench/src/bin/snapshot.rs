//! `snapshot` — one-shot performance snapshot of the `ZDD_SCG` solver.
//!
//! Runs the difficult-cyclic suite and writes `results/BENCH_scg.json`, a
//! single JSON document with per-instance cost / lower bound / wall time /
//! phase breakdown plus aggregate totals — the file a CI job can archive or
//! diff to track solver performance over time. Each instance is solved
//! twice, serially and through the shared-core parallel restart engine, so
//! the snapshot also carries a `parallel` speedup row (the two solves
//! return the identical answer by construction; the snapshot asserts it).
//! A third pass re-runs the whole suite through the `ucp-engine` batch
//! scheduler at 1 and N workers and records an `engine` throughput row
//! (jobs/sec and batch speedup), again asserting identical outcomes.
//! A further `zdd_kernel` row times full implicit reductions over the
//! challenging suite — the manager-level regression signal CI greps for.
//! A `multicover` row solves the crew-scheduling set-multicover
//! mini-suite through the constrained core (coverage demands + GUB
//! groups), asserting every cover satisfies its constraints — the
//! regression signal for the non-unate path. A `durability` row solves
//! part of the suite plain and again with per-restart checkpoints
//! journaled (fsync included) to measure the write-ahead overhead a
//! `ucp serve --journal` job pays, asserting identical answers and a
//! lossless replay round trip. Finally a `server` row
//! starts an in-process `ucp-server` on an ephemeral port and pushes a
//! load-generator burst through the whole `ucp-api/2` wire path (HTTP
//! parse → DTO → admission → engine → poll), recording jobs/sec and
//! p50/p99 submit→terminal latency; the pass asserts that no accepted
//! job is ever lost.
//!
//! Usage: `cargo run -p ucp-bench --release --bin snapshot [--quick]
//! [--node-budget N]` — the budget applies to the `zdd_kernel` pass only
//! and switches it to the fallible governed entry points, recording how
//! many instances overflowed.

use std::fs;
use std::sync::Arc;
use std::time::Instant;
use ucp_bench::{run_scg, scg_fields};
use ucp_core::{Preset, Scg, ScgOptions, ScgOutcome, SolveRequest};
use ucp_engine::{Engine, EngineConfig};
use ucp_telemetry::{JsonObj, Phase};
use workloads::suite;

/// The commit the snapshot was taken at, so archived `BENCH_scg.json`
/// files can be lined up against history. `"unknown"` outside a git
/// checkout (e.g. a source tarball).
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs every instance as one engine job; returns outcomes in
/// submission order plus the batch wall time.
fn engine_pass(
    instances: &[Arc<cover::CoverMatrix>],
    opts: ScgOptions,
    workers: usize,
) -> (Vec<ScgOutcome>, f64) {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: instances.len().max(1),
    });
    let start = Instant::now();
    let jobs: Vec<_> = instances
        .iter()
        .map(|m| {
            engine
                .submit(SolveRequest::for_shared(Arc::clone(m)).options(opts))
                .expect("engine accepts the suite")
        })
        .collect();
    let outs: Vec<ScgOutcome> = jobs
        .into_iter()
        .map(|j| j.wait().expect("engine job completed"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    engine.shutdown();
    (outs, elapsed)
}

/// Kernel microbench: full implicit reduction (`reduce()`, no MaxR/MaxC
/// early exit) over the challenging suite. This is the row CI
/// smoke-checks for — it tracks the ZDD manager itself (unique-table
/// probing, computed-cache hit rate, GC) independent of the subgradient
/// heuristic. With `--node-budget N` the pass runs on a capped kernel
/// via the fallible entry points, recording how many instances
/// overflowed — the governed-mode smoke signal.
fn kernel_pass(quick: bool, node_budget: Option<usize>) -> String {
    let mut insts = suite::challenging();
    if quick {
        insts.truncate(4);
    }
    let mut stats = cover::ZddStats::default();
    let mut overflowed = 0u64;
    let start = Instant::now();
    for inst in &insts {
        match node_budget {
            // The unbudgeted pass is the historical benchmark workload:
            // keep it byte-identical so snapshots stay comparable.
            None => {
                let mut im = cover::ImplicitMatrix::encode(&inst.matrix);
                let _fixed = im.reduce();
                stats.merge(&im.zdd_stats());
            }
            Some(n) => {
                let kernel = cover::ZddOptions::new().node_budget(n);
                match cover::ImplicitMatrix::try_encode_with(&inst.matrix, kernel) {
                    Ok(mut im) => {
                        if im
                            .try_reduce_until_small(0, 0, &cover::Halt::none())
                            .is_err()
                        {
                            overflowed += 1;
                        }
                        stats.merge(&im.zdd_stats());
                    }
                    Err(_) => overflowed += 1,
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let mut row = JsonObj::new();
    row.field_str("suite", "challenging");
    row.field_u64("instances", insts.len() as u64);
    row.field_f64("implicit_reduce_seconds", secs);
    row.field_f64("cache_hit_rate", stats.cache_hit_rate());
    row.field_f64("unique_hit_rate", stats.unique_hit_rate());
    row.field_u64("peak_live_nodes", stats.peak_nodes as u64);
    row.field_u64("gc_runs", stats.gc_runs);
    row.field_u64("gc_reclaimed", stats.gc_reclaimed);
    if let Some(n) = node_budget {
        row.field_u64("node_budget", n as u64);
        row.field_u64("overflowed", overflowed);
    }
    println!(
        "zdd_kernel: {secs:.3}s implicit reduce over {} instances, cache {:.2}% hit, unique {:.2}% hit, peak {} nodes{}",
        insts.len(),
        100.0 * stats.cache_hit_rate(),
        100.0 * stats.unique_hit_rate(),
        stats.peak_nodes,
        match node_budget {
            Some(n) => format!(", budget {n} ({overflowed} overflowed)"),
            None => String::new(),
        }
    );
    row.finish()
}

/// Constrained-core pass: the crew-scheduling set-multicover mini-suite
/// (per-period staffing demands plus one GUB group per crew) through the
/// full constrained solver. Every instance is feasible by construction,
/// so the pass asserts a finite cover that satisfies its constraints
/// with `lower_bound ≤ cost` — the regression signal for the non-unate
/// path, which the unate rows above never touch.
fn multicover_pass(opts: ScgOptions) -> String {
    let insts = suite::multicover();
    let start = Instant::now();
    let mut total_cost = 0.0f64;
    let mut total_lb = 0.0f64;
    for (name, inst) in &insts {
        let req = SolveRequest::for_matrix(&inst.matrix)
            .options(opts)
            .constraints(inst.constraints.clone());
        let out = Scg::run(req).expect("multicover suite instances solve");
        assert!(
            out.cost.is_finite(),
            "{name}: no cover found for a feasible-by-construction instance"
        );
        assert!(
            inst.constraints.is_satisfied(&inst.matrix, &out.solution),
            "{name}: returned cover violates its constraints"
        );
        assert!(
            out.lower_bound <= out.cost + 1e-9,
            "{name}: lower bound {} exceeds cost {}",
            out.lower_bound,
            out.cost
        );
        total_cost += out.cost;
        total_lb += out.lower_bound;
    }
    let secs = start.elapsed().as_secs_f64();
    let mut row = JsonObj::new();
    row.field_str("suite", "multicover");
    row.field_u64("instances", insts.len() as u64);
    row.field_f64("total_seconds", secs);
    row.field_f64("total_cost", total_cost);
    row.field_f64("total_lower_bound", total_lb);
    println!(
        "multicover: {} crew-schedule instances in {secs:.3}s, total cost {total_cost}, total lb {total_lb:.2}",
        insts.len()
    );
    row.finish()
}

/// Durability overhead: the difficult suite solved plain and then with
/// per-restart checkpoints journaled (with fsync) to a scratch journal —
/// the write-ahead path a `ucp serve --journal` job rides. Outcomes must
/// be identical (the checkpoint tap only observes), the journal must
/// replay to exactly the records written, and the newest checkpoint of
/// every instance must resume to a cost no worse than the plain answer.
fn durability_pass(opts: ScgOptions) -> String {
    use ucp_durability::{read_journal, Journal, Record, RecoverySet};
    let mut insts = suite::difficult_cyclic();
    insts.truncate(4);
    let dir = std::env::temp_dir().join(format!("ucp-bench-durability-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let journal = Journal::open(&dir).expect("open scratch journal").journal;

    let mut plain_seconds = 0.0f64;
    let mut journaled_seconds = 0.0f64;
    let mut checkpoints = 0u64;
    for (i, inst) in insts.iter().enumerate() {
        let start = Instant::now();
        let plain =
            Scg::run(SolveRequest::for_matrix(&inst.matrix).options(opts)).expect("plain solve");
        plain_seconds += start.elapsed().as_secs_f64();

        let journal_ref = &journal;
        let start = Instant::now();
        let journaled = Scg::run(
            SolveRequest::for_matrix(&inst.matrix)
                .options(opts)
                .checkpoint_every(1)
                .checkpoint_sink(move |ckpt| {
                    journal_ref
                        .append(&Record::Checkpoint {
                            job: i as u64,
                            t_ms: 0,
                            ckpt: ckpt.clone(),
                        })
                        .expect("journal append");
                }),
        )
        .expect("journaled solve");
        journaled_seconds += start.elapsed().as_secs_f64();
        assert_eq!(
            (plain.cost, plain.solution.cols()),
            (journaled.cost, journaled.solution.cols()),
            "{}: journaled solve diverged from plain",
            inst.name
        );

        // Round trip: the newest journaled checkpoint resumes to a cost
        // no worse than the uninterrupted answer.
        let replay = read_journal(&dir).expect("replay scratch journal");
        let set = RecoverySet::from_records(&replay.records);
        let newest = set.jobs[&(i as u64)]
            .checkpoint
            .clone()
            .expect("solve journaled at least one checkpoint");
        let resumed = Scg::run(
            SolveRequest::for_matrix(&inst.matrix)
                .options(opts)
                .resume_from(newest),
        )
        .expect("resumed solve");
        assert!(
            resumed.cost <= plain.cost,
            "{}: resume lost ground ({} > {})",
            inst.name,
            resumed.cost,
            plain.cost
        );
    }
    let replay = read_journal(&dir).expect("replay scratch journal");
    for r in &replay.records {
        assert!(matches!(r, Record::Checkpoint { .. }));
        checkpoints += 1;
    }
    assert_eq!(replay.torn_bytes, 0, "append path wrote a torn frame");
    let journal_bytes = replay.valid_bytes;
    let _ = fs::remove_dir_all(&dir);

    let overhead_pct = if plain_seconds > 0.0 {
        100.0 * (journaled_seconds - plain_seconds) / plain_seconds
    } else {
        0.0
    };
    let mut row = JsonObj::new();
    row.field_u64("instances", insts.len() as u64);
    row.field_f64("plain_seconds", plain_seconds);
    row.field_f64("journaled_seconds", journaled_seconds);
    row.field_f64("overhead_pct", overhead_pct);
    row.field_u64("checkpoints", checkpoints);
    row.field_u64("journal_bytes", journal_bytes);
    println!(
        "durability: {} instances, plain {plain_seconds:.3}s vs journaled {journaled_seconds:.3}s \
         ({overhead_pct:+.2}% overhead), {checkpoints} checkpoints / {journal_bytes} journal bytes",
        insts.len()
    );
    row.finish()
}

/// Wire-path throughput: an in-process server on an ephemeral port,
/// saturated by the shared load generator (the same one behind
/// `ucp-loadgen` and the CI smoke). Zero lost handles is asserted, not
/// just reported — a dropped job is a bug, not a slow run.
fn server_pass(quick: bool) -> String {
    let jobs = if quick { 200 } else { 2000 };
    let server = ucp_server::Server::start(ucp_server::ServerConfig {
        queue_capacity: 1024,
        ..ucp_server::ServerConfig::default()
    })
    .expect("server binds an ephemeral port");
    let opts = ucp_server::LoadgenOptions {
        jobs,
        connections: 8,
        ..ucp_server::LoadgenOptions::default()
    };
    let report =
        ucp_server::loadgen::run(&server.addr().to_string(), &opts).expect("loadgen run completes");
    assert_eq!(report.lost, 0, "server lost job handles: {report:?}");
    assert_eq!(
        report.completed + report.failed,
        jobs as u64,
        "not every job turned terminal: {report:?}"
    );
    server.shutdown();
    let mut row = JsonObj::new();
    row.field_u64("jobs", report.submitted);
    row.field_u64("connections", opts.connections as u64);
    row.field_u64("completed", report.completed);
    row.field_u64("rejected_429", report.rejected_429);
    row.field_u64("shed", report.shed);
    row.field_f64("jobs_per_sec", report.jobs_per_sec);
    row.field_f64("p50_ms", report.p50_ms);
    row.field_f64("p99_ms", report.p99_ms);
    println!(
        "server: {} jobs over {} connections, {:.1} jobs/s, p50 {:.2}ms, p99 {:.2}ms ({} shed, {} 429s absorbed)",
        report.submitted,
        opts.connections,
        report.jobs_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.shed,
        report.rejected_429
    );
    row.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let node_budget = args.iter().position(|a| a == "--node-budget").map(|i| {
        args.get(i + 1)
            .and_then(|n| n.parse::<usize>().ok())
            .expect("--node-budget needs a node count")
    });
    let opts = if quick {
        Preset::Fast.options()
    } else {
        ScgOptions::default()
    };
    // At least 2 so the pooled path is exercised even on one-core boxes
    // (where the speedup honestly reports ~1.0).
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 8);
    let mut runs: Vec<String> = Vec::new();
    let mut total_seconds = 0.0f64;
    let mut parallel_seconds = 0.0f64;
    let mut forced_pool_seconds = 0.0f64;
    let mut fallback_engaged = 0usize;
    let mut subgradient_seconds = 0.0f64;
    let mut subgradient_iters = 0u64;
    let mut certified = 0usize;
    let mut serial_outcomes: Vec<ScgOutcome> = Vec::new();
    let instances = suite::difficult_cyclic();
    for inst in &instances {
        let out = run_scg(&inst.matrix, opts);
        // The honest parallel run: default small-core fallback in force,
        // so its `restart_workers` records the scheduling decision.
        let par = run_scg(&inst.matrix, ScgOptions { workers, ..opts });
        // And a forced-pool run (fallback off) so the pooled machinery
        // itself stays under the determinism check.
        let pooled = run_scg(
            &inst.matrix,
            ScgOptions {
                workers,
                parallel_nnz_threshold: 0,
                ..opts
            },
        );
        for (label, other) in [("parallel", &par), ("forced-pool", &pooled)] {
            assert_eq!(
                (out.cost, out.solution.cols()),
                (other.cost, other.solution.cols()),
                "{}: {label} solve diverged from serial",
                inst.name
            );
        }
        total_seconds += out.total_time.as_secs_f64();
        parallel_seconds += par.total_time.as_secs_f64();
        forced_pool_seconds += pooled.total_time.as_secs_f64();
        if par.restart_workers == 1 {
            fallback_engaged += 1;
        }
        subgradient_seconds += out.phase_times.get(Phase::Subgradient);
        subgradient_iters += out.subgradient_iterations as u64;
        if out.proven_optimal {
            certified += 1;
        }
        let mut o = JsonObj::new();
        o.field_str("instance", &inst.name);
        o.field_u64("rows", inst.matrix.num_rows() as u64);
        o.field_u64("cols", inst.matrix.num_cols() as u64);
        scg_fields(&mut o, &out);
        o.field_f64("parallel_seconds", par.total_time.as_secs_f64());
        runs.push(o.finish());
        println!(
            "{:>10}  cost {:>6}  lb {:>8.2}  {:>7.3}s  ({:>7.3}s with {workers} workers)",
            inst.name,
            out.cost,
            out.lower_bound,
            out.total_time.as_secs_f64(),
            par.total_time.as_secs_f64()
        );
        serial_outcomes.push(out);
    }
    let speedup = if parallel_seconds > 0.0 {
        total_seconds / parallel_seconds
    } else {
        1.0
    };

    // Engine throughput: the same suite as a batch of jobs, once on a
    // single engine worker and once on the full pool. Outcomes must
    // match the serial loop exactly — the batch determinism contract.
    let shared: Vec<Arc<cover::CoverMatrix>> = instances
        .iter()
        .map(|i| Arc::new(i.matrix.clone()))
        .collect();
    let (engine_serial, secs_1w) = engine_pass(&shared, opts, 1);
    let (engine_pooled, secs_nw) = engine_pass(&shared, opts, workers);
    for (i, inst) in instances.iter().enumerate() {
        for outs in [&engine_serial, &engine_pooled] {
            assert_eq!(
                (serial_outcomes[i].cost, serial_outcomes[i].solution.cols()),
                (outs[i].cost, outs[i].solution.cols()),
                "{}: engine batch diverged from serial",
                inst.name
            );
        }
    }
    let jobs = instances.len() as f64;
    let (jps_1w, jps_nw) = (jobs / secs_1w.max(1e-9), jobs / secs_nw.max(1e-9));
    let engine_speedup = if secs_nw > 0.0 {
        secs_1w / secs_nw
    } else {
        1.0
    };
    let mut doc = JsonObj::new();
    doc.field_str("schema", "ucp-bench-snapshot/5");
    doc.field_u64("schema_version", 5);
    doc.field_str("git_commit", &git_commit());
    doc.field_str("preset", if quick { "fast" } else { "default" });
    doc.field_u64("instances", runs.len() as u64);
    doc.field_u64("certified_optimal", certified as u64);
    doc.field_f64("total_seconds", total_seconds);
    // The CI perf-smoke row: CPU seconds inside the subgradient phase of
    // the serial pass (summed over all ascents), plus the iteration count
    // that contextualises it.
    let mut sub_row = JsonObj::new();
    sub_row.field_f64("phase_seconds", subgradient_seconds);
    sub_row.field_u64("iterations", subgradient_iters);
    doc.field_raw("subgradient", &sub_row.finish());
    let mut par_row = JsonObj::new();
    par_row.field_u64("workers", workers as u64);
    par_row.field_f64("total_seconds", parallel_seconds);
    par_row.field_f64("speedup", speedup);
    // The small-core serial-fallback decision: threshold in force and how
    // many of the suite's instances it collapsed to an inline solve.
    par_row.field_u64(
        "serial_fallback_nnz",
        ScgOptions::default().parallel_nnz_threshold as u64,
    );
    par_row.field_u64("fallback_engaged", fallback_engaged as u64);
    par_row.field_f64("forced_pool_seconds", forced_pool_seconds);
    doc.field_raw("parallel", &par_row.finish());
    let mut eng_row = JsonObj::new();
    eng_row.field_u64("workers", workers as u64);
    eng_row.field_f64("jobs_per_sec_1_worker", jps_1w);
    eng_row.field_f64("jobs_per_sec_pooled", jps_nw);
    eng_row.field_f64("batch_speedup", engine_speedup);
    doc.field_raw("engine", &eng_row.finish());
    doc.field_raw("zdd_kernel", &kernel_pass(quick, node_budget));
    doc.field_raw("multicover", &multicover_pass(opts));
    doc.field_raw("durability", &durability_pass(opts));
    doc.field_raw("server", &server_pass(quick));
    doc.field_raw("runs", &format!("[{}]", runs.join(",")));
    fs::create_dir_all("results").expect("create results/");
    fs::write("results/BENCH_scg.json", doc.finish() + "\n").expect("write results/BENCH_scg.json");
    println!(
        "snapshot: {} instances, {certified} certified optimal, {total_seconds:.2}s serial / {parallel_seconds:.2}s with {workers} workers ({speedup:.2}x, fallback on {fallback_engaged}) -> results/BENCH_scg.json",
        runs.len()
    );
    println!("subgradient: {subgradient_seconds:.3}s in phase over {subgradient_iters} iterations");
    println!(
        "engine: {jps_1w:.2} jobs/s at 1 worker, {jps_nw:.2} jobs/s at {workers} workers ({engine_speedup:.2}x batch speedup)"
    );
}
