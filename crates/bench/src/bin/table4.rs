//! Table 4: ZDD_SCG vs the exact (scherzo-like) solver on the *challenging*
//! instances.
//!
//! Expected shape (paper): many instances certified optimal by the
//! heuristic itself; on the instances the exact solver cannot close within
//! budget, ZDD_SCG delivers the best-known cover together with a lower
//! bound quantifying the residual error (the paper's 27–47% error
//! reductions on ex1010/test2/test3).
//!
//! Usage: `cargo run -p ucp-bench --release --bin table4 [--quick]`

use std::time::Duration;
use ucp_bench::{finish_log, run_exact, run_scg, scg_fields, secs, BenchLog, Table};
use ucp_core::{Preset, ScgOptions};
use workloads::suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        Preset::Fast.options()
    } else {
        ScgOptions::default()
    };
    let (nodes, budget) = if quick {
        (100_000u64, Duration::from_secs(2))
    } else {
        (3_000_000, Duration::from_secs(45))
    };
    let mut t = Table::new([
        "Name",
        "SCG Sol(LB)",
        "SCG T(s)",
        "MaxIter",
        "Exact Sol",
        "Exact T(s)",
        "Gap",
    ]);
    let mut log = BenchLog::create("table4").expect("create results/table4.jsonl");
    let mut certified = 0usize;
    for inst in suite::challenging() {
        let scg = run_scg(&inst.matrix, opts);
        let exact = run_exact(&inst.matrix, nodes, budget);
        log.row("table4_row", |o| {
            o.field_str("instance", &inst.name);
            scg_fields(o, &scg);
            o.field_f64("exact_cost", exact.cost);
            o.field_bool("exact_optimal", exact.optimal);
            o.field_u64("exact_nodes", exact.nodes);
            o.field_f64("exact_seconds", exact.elapsed.as_secs_f64());
        });
        if scg.proven_optimal {
            certified += 1;
        }
        let sol = if scg.proven_optimal {
            format!("{}*", scg.cost)
        } else {
            format!("{}({})", scg.cost, scg.lower_bound)
        };
        let exact_sol = if exact.optimal {
            format!("{}", exact.cost)
        } else {
            format!("{}H", exact.cost)
        };
        let gap = if scg.lower_bound > 0.0 {
            format!(
                "{:.1}%",
                100.0 * (scg.cost - scg.lower_bound) / scg.lower_bound
            )
        } else {
            "-".to_string()
        };
        t.row([
            inst.name.clone(),
            sol,
            secs(scg.total_time),
            scg.iterations.to_string(),
            exact_sol,
            secs(exact.elapsed),
            gap,
        ]);
    }
    println!("Table 4 — challenging vs exact (`*` proven by SCG's own bound, `H` = exact budget exhausted)");
    println!("{}", t.render());
    println!("instances certified optimal by ZDD_SCG alone: {certified}/16 (paper: 11/16)");
    finish_log(log);
}
