//! Figure 1: the lower-bound chain `LB_MIS ≤ LB_DA ≤ LB_Lagr ≤ LB_LR ≤ z*`
//! on the reconstructed example instance, its uniform-cost variant, and a
//! family of circulants.
//!
//! Expected values on the example (as in the paper's §3.4):
//! `LB_MIS = 1 < LB_DA = 2 < LB_LR = 2.5 → ⌈2.5⌉ = 3 = z*`; with uniform
//! costs `LB_MIS = LB_DA` (Proposition 1's collapse).
//!
//! Usage: `cargo run -p ucp-bench --release --bin figure1`

use cover::CoverMatrix;
use lp::DenseLp;
use std::time::Duration;
use ucp_bench::{finish_log, run_exact, BenchLog, Table};
use ucp_core::bounds::{bounds_report, BoundsReport};
use workloads::{circulant, suite};

fn lp_bound(m: &CoverMatrix) -> f64 {
    DenseLp::covering(m.num_cols(), m.rows(), m.costs())
        .solve()
        .map(|s| s.objective)
        .unwrap_or(f64::NAN)
}

fn row(t: &mut Table, log: &mut BenchLog, name: &str, m: &CoverMatrix) -> (BoundsReport, f64, f64) {
    let b = bounds_report(m);
    let lr = lp_bound(m);
    let exact = run_exact(m, 2_000_000, Duration::from_secs(30));
    let opt = if exact.optimal { exact.cost } else { f64::NAN };
    log.row("figure1_row", |o| {
        o.field_str("instance", name);
        o.field_f64("lb_mis", b.mis);
        o.field_f64("lb_da", b.dual_ascent);
        o.field_f64("lb_lagr", b.lagrangian);
        o.field_f64("lb_lr", lr);
        o.field_f64("optimum", opt);
    });
    t.row([
        name.to_string(),
        format!("{:.2}", b.mis),
        format!("{:.2}", b.dual_ascent),
        format!("{:.2}", b.lagrangian),
        format!("{lr:.2}"),
        format!("{:.0}", (lr - 1e-9).ceil()),
        format!("{opt:.0}"),
    ]);
    (b, lr, opt)
}

fn main() {
    let mut log = BenchLog::create("figure1").expect("create results/figure1.jsonl");
    let mut t = Table::new([
        "instance", "LB_MIS", "LB_DA", "LB_Lagr", "LB_LR", "ceil", "z*",
    ]);
    let (b, lr, opt) = row(&mut t, &mut log, "figure1", &suite::figure1());
    let (bu, _, _) = row(
        &mut t,
        &mut log,
        "figure1-uniform",
        &suite::figure1_uniform(),
    );
    for n in [5usize, 9, 13] {
        row(&mut t, &mut log, &format!("C({n},2)"), &circulant(n, 2));
    }
    for (n, k) in [(12usize, 3usize), (20, 4)] {
        row(&mut t, &mut log, &format!("C({n},{k})"), &circulant(n, k));
    }
    println!("Figure 1 — lower-bound comparison (paper example: 1 < 2 < 2.5 → 3)");
    println!("{}", t.render());

    let strict = b.mis < b.dual_ascent && b.dual_ascent < lr && (lr - 1e-9).ceil() == opt;
    println!(
        "strict chain on figure1 (MIS < DA < LR, ceil(LR) = z*): {}",
        if strict { "HOLDS" } else { "VIOLATED" }
    );
    println!(
        "uniform-cost collapse (MIS = DA): {}",
        if (bu.mis - bu.dual_ascent).abs() < 1e-9 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    finish_log(log);
}
