//! The classic Berkeley functions that are semantically regenerable
//! (`rd53`, `rd73`, `rd84`, `9sym`, `xor5`, majorities), run through the
//! *full* pipeline the paper describes: PLA → implicit primes →
//! Quine–McCluskey covering matrix → reductions → ZDD_SCG, against the
//! espresso-like heuristic and the exact solver.
//!
//! These are the only instances where our minterm/prime counts can be
//! compared against the literature directly (e.g. xor5's minimum SOP is
//! exactly its 16 odd minterms — parity admits no merging).
//!
//! Usage: `cargo run -p ucp-bench --release --bin classic`

use solvers::EspressoMode;
use std::time::Duration;
use ucp_bench::{run_espresso, run_exact, run_scg, secs, Table};
use ucp_core::ScgOptions;
use workloads::classic::all_classics;

fn main() {
    let mut t = Table::new([
        "Name", "ins", "outs", "rows", "cols", "SCG", "T(s)", "Espr", "Strong", "Exact",
    ]);
    for (name, pla) in all_classics() {
        let inst = match logic::build_covering(&pla) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let scg = run_scg(&inst.matrix, ScgOptions::default());
        let (en, _) = run_espresso(&inst.matrix, EspressoMode::Normal)
            .unwrap_or_else(|e| panic!("espresso (normal) failed on {name}: {e}"));
        let (es, _) = run_espresso(&inst.matrix, EspressoMode::Strong)
            .unwrap_or_else(|e| panic!("espresso (strong) failed on {name}: {e}"));
        let exact = run_exact(&inst.matrix, 2_000_000, Duration::from_secs(30));
        let exact_str = if exact.optimal {
            format!("{}", exact.cost)
        } else {
            format!("{}H", exact.cost)
        };
        // Verify the minimised PLA against the specification.
        let minimised = inst.solution_to_pla(&scg.solution);
        assert!(
            inst.verify_against(&pla, &minimised),
            "{name}: cover does not realise the function"
        );
        t.row([
            name.to_string(),
            pla.num_inputs().to_string(),
            pla.num_outputs().to_string(),
            inst.matrix.num_rows().to_string(),
            inst.matrix.num_cols().to_string(),
            format!("{}{}", scg.cost, if scg.proven_optimal { "*" } else { "" }),
            secs(scg.total_time),
            format!("{en}"),
            format!("{es}"),
            exact_str,
        ]);
    }
    println!("Classic semantically-defined Berkeley functions, full pipeline");
    println!("{}", t.render());
    println!("(xor5's 16 is provably minimal: parity admits no cube merging)");
}
