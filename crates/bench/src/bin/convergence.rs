//! Subgradient convergence trace (§3.2's narrative rendered as a text
//! figure): `z_λ` oscillates while the best bound `LB` only rises and the
//! dual-Lagrangian upper bound `UB_LD` only falls, squeezing `z*_P`.
//!
//! Usage: `cargo run -p ucp-bench --release --bin convergence [instance]`

use ucp_core::{subgradient_ascent, SubgradientOptions};
use workloads::suite;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bench1".into());
    let instances = suite::all();
    let inst = instances
        .iter()
        .find(|i| i.name == which)
        .unwrap_or_else(|| {
            eprintln!("unknown instance {which:?}; defaulting to bench1");
            instances.iter().find(|i| i.name == "bench1").expect("suite")
        });
    let opts = SubgradientOptions {
        record_history: true,
        max_iters: 200,
        ..SubgradientOptions::default()
    };
    let r = subgradient_ascent(&inst.matrix, &opts, None, None);

    println!(
        "subgradient trace on {} ({}×{}), final LB {:.2}, incumbent {}",
        inst.name,
        inst.matrix.num_rows(),
        inst.matrix.num_cols(),
        r.lb,
        r.best_cost
    );
    let lo = r
        .history
        .iter()
        .map(|h| h.z_lambda)
        .fold(f64::INFINITY, f64::min);
    let hi = r
        .history
        .iter()
        .map(|h| h.ub_ld.min(r.best_cost))
        .fold(r.lb, f64::max);
    let width = 56usize;
    let col = |v: f64| -> usize {
        (((v - lo) / (hi - lo).max(1e-9)) * (width as f64 - 1.0))
            .round()
            .clamp(0.0, width as f64 - 1.0) as usize
    };
    println!("{:>5}  {:<width$}  {:>8} {:>8} {:>8}", "iter", "z=· LB=# UB=|", "z_λ", "LB", "UB_LD");
    for (k, h) in r.history.iter().enumerate() {
        if k % 5 != 0 && k + 1 != r.history.len() {
            continue;
        }
        let mut line = vec![' '; width];
        line[col(h.lb)] = '#';
        let ub = h.ub_ld.min(r.best_cost);
        if ub.is_finite() {
            line[col(ub)] = '|';
        }
        line[col(h.z_lambda)] = '·';
        println!(
            "{:>5}  {}  {:>8.2} {:>8.2} {:>8.2}",
            k,
            line.iter().collect::<String>(),
            h.z_lambda,
            h.lb,
            h.ub_ld
        );
    }
    // The monotonicity the paper describes.
    let lb_monotone = r.history.windows(2).all(|w| w[1].lb >= w[0].lb - 1e-12);
    let ub_monotone = r.history.windows(2).all(|w| w[1].ub_ld <= w[0].ub_ld + 1e-12);
    println!(
        "LB monotone non-decreasing: {}; UB_LD monotone non-increasing: {}",
        if lb_monotone { "YES" } else { "NO" },
        if ub_monotone { "YES" } else { "NO" }
    );
}
