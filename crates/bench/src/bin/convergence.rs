//! Subgradient convergence trace (§3.2's narrative rendered as a text
//! figure): `z_λ` oscillates while the best bound `LB` only rises and the
//! dual-Lagrangian upper bound `UB_LD` only falls, squeezing `z*_P`.
//!
//! Usage: `cargo run -p ucp-bench --release --bin convergence [instance]`

use std::fs::{self, File};
use std::io::BufWriter;
use ucp_core::{subgradient_ascent_probed, SubgradientOptions};
use ucp_telemetry::JsonlSink;
use workloads::suite;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "bench1".into());
    let instances = suite::all();
    let inst = instances
        .iter()
        .find(|i| i.name == which)
        .unwrap_or_else(|| {
            eprintln!("unknown instance {which:?}; defaulting to bench1");
            instances
                .iter()
                .find(|i| i.name == "bench1")
                .expect("suite")
        });
    let opts = SubgradientOptions {
        record_history: true,
        max_iters: 200,
        ..SubgradientOptions::default()
    };
    // The JSONL trace is the solver's own event stream (one
    // `subgradient_iter` line per iteration), not a rendering of `history`.
    fs::create_dir_all("results").expect("create results/");
    let file = File::create("results/convergence.jsonl").expect("create results/convergence.jsonl");
    let mut sink = JsonlSink::new(BufWriter::new(file));
    sink.write_line("bench_header", |o| {
        o.field_str("bench", "convergence");
        o.field_str("instance", &inst.name);
        o.field_u64("rows", inst.matrix.num_rows() as u64);
        o.field_u64("cols", inst.matrix.num_cols() as u64);
    });
    let r = subgradient_ascent_probed(&inst.matrix, &opts, None, None, &mut sink);
    sink.write_line("result", |o| {
        o.field_f64("lb", r.lb);
        o.field_f64("best_cost", r.best_cost);
        o.field_u64("iterations", r.iterations as u64);
    });
    sink.finish().expect("write results/convergence.jsonl");
    eprintln!("results: results/convergence.jsonl");

    println!(
        "subgradient trace on {} ({}×{}), final LB {:.2}, incumbent {}",
        inst.name,
        inst.matrix.num_rows(),
        inst.matrix.num_cols(),
        r.lb,
        r.best_cost
    );
    let lo = r
        .history
        .iter()
        .map(|h| h.z_lambda)
        .fold(f64::INFINITY, f64::min);
    let hi = r
        .history
        .iter()
        .map(|h| h.ub_ld.min(r.best_cost))
        .fold(r.lb, f64::max);
    let width = 56usize;
    let col = |v: f64| -> usize {
        (((v - lo) / (hi - lo).max(1e-9)) * (width as f64 - 1.0))
            .round()
            .clamp(0.0, width as f64 - 1.0) as usize
    };
    println!(
        "{:>5}  {:<width$}  {:>8} {:>8} {:>8}",
        "iter", "z=· LB=# UB=|", "z_λ", "LB", "UB_LD"
    );
    for (k, h) in r.history.iter().enumerate() {
        if k % 5 != 0 && k + 1 != r.history.len() {
            continue;
        }
        let mut line = vec![' '; width];
        line[col(h.lb)] = '#';
        let ub = h.ub_ld.min(r.best_cost);
        if ub.is_finite() {
            line[col(ub)] = '|';
        }
        line[col(h.z_lambda)] = '·';
        println!(
            "{:>5}  {}  {:>8.2} {:>8.2} {:>8.2}",
            k,
            line.iter().collect::<String>(),
            h.z_lambda,
            h.lb,
            h.ub_ld
        );
    }
    // The monotonicity the paper describes.
    let lb_monotone = r.history.windows(2).all(|w| w[1].lb >= w[0].lb - 1e-12);
    let ub_monotone = r
        .history
        .windows(2)
        .all(|w| w[1].ub_ld <= w[0].ub_ld + 1e-12);
    println!(
        "LB monotone non-decreasing: {}; UB_LD monotone non-increasing: {}",
        if lb_monotone { "YES" } else { "NO" },
        if ub_monotone { "YES" } else { "NO" }
    );
}
