//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! One binary per experiment (see `DESIGN.md` → per-experiment index):
//!
//! | experiment | binary |
//! |---|---|
//! | §5 experiment 1 (easy cyclic aggregate) | `easy_cyclic` |
//! | Table 1 (difficult cyclic vs Espresso) | `table1` |
//! | Table 2 (challenging vs Espresso) | `table2` |
//! | Table 3 (difficult cyclic vs exact) | `table3` |
//! | Table 4 (challenging vs exact) | `table4` |
//! | Figure 1 (bound chain) | `figure1` |
//! | design-choice ablations | `ablation` |
//!
//! Criterion micro-benchmarks live under `benches/`.

use cover::CoverMatrix;
use solvers::{branch_and_bound, espresso_like, BnbOptions, EspressoMode};
use std::time::{Duration, Instant};
use ucp_core::{Scg, ScgOptions, ScgOutcome};

/// Formats seconds with two decimals (the tables' `T(s)` style).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Runs `ZDD_SCG` with the given options and returns the outcome.
pub fn run_scg(m: &CoverMatrix, opts: ScgOptions) -> ScgOutcome {
    Scg::new(opts).solve(m)
}

/// Runs the espresso-like baseline; returns `(cost, wall time)`.
pub fn run_espresso(m: &CoverMatrix, mode: EspressoMode) -> (f64, Duration) {
    let t = Instant::now();
    let cost = espresso_like(m, mode)
        .map(|s| s.cost(m))
        .unwrap_or(f64::INFINITY);
    (cost, t.elapsed())
}

/// Runs the exact branch-and-bound under a budget; returns the result.
pub fn run_exact(m: &CoverMatrix, node_limit: u64, time_limit: Duration) -> solvers::BnbResult {
    branch_and_bound(
        m,
        &BnbOptions {
            node_limit,
            time_limit: Some(time_limit),
            ..BnbOptions::default()
        },
    )
}

/// A minimal fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["Name", "Sol"]);
        t.row(["bench1", "121"]);
        t.row(["x", "9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Name"));
        assert!(lines[2].ends_with("121"));
    }

    #[test]
    fn harness_wrappers_run() {
        let m = CoverMatrix::from_rows(
            5,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
        );
        let scg = run_scg(&m, ScgOptions::fast());
        assert_eq!(scg.cost, 3.0);
        let (e, _) = run_espresso(&m, EspressoMode::Normal);
        assert!(e >= 3.0);
        let exact = run_exact(&m, 10_000, Duration::from_secs(5));
        assert!(exact.optimal);
        assert_eq!(exact.cost, 3.0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
