//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! One binary per experiment (see `DESIGN.md` → per-experiment index):
//!
//! | experiment | binary |
//! |---|---|
//! | §5 experiment 1 (easy cyclic aggregate) | `easy_cyclic` |
//! | Table 1 (difficult cyclic vs Espresso) | `table1` |
//! | Table 2 (challenging vs Espresso) | `table2` |
//! | Table 3 (difficult cyclic vs exact) | `table3` |
//! | Table 4 (challenging vs exact) | `table4` |
//! | Figure 1 (bound chain) | `figure1` |
//! | design-choice ablations | `ablation` |
//!
//! Criterion micro-benchmarks live under `benches/`.

use cover::CoverMatrix;
use solvers::{branch_and_bound, espresso_like, BnbOptions, EspressoMode};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use ucp_core::{Scg, ScgOptions, ScgOutcome, SolveRequest};
use ucp_telemetry::{JsonObj, JsonlSink};

/// Formats seconds with two decimals (the tables' `T(s)` style).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Runs `ZDD_SCG` with the given options and returns the outcome.
pub fn run_scg(m: &CoverMatrix, opts: ScgOptions) -> ScgOutcome {
    Scg::run(SolveRequest::for_matrix(m).options(opts)).expect("no cancel flag")
}

/// The espresso-like baseline produced no cover (some row is uncoverable).
#[derive(Clone, Copy, Debug)]
pub struct EspressoFailed;

impl fmt::Display for EspressoFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("espresso-like baseline found no cover (instance infeasible?)")
    }
}

impl std::error::Error for EspressoFailed {}

/// Runs the espresso-like baseline; returns `(cost, wall time)`.
///
/// # Errors
///
/// Fails when the baseline cannot build a cover at all. Earlier versions
/// folded that case into a silent `f64::INFINITY` cost, which made a broken
/// baseline look like a (spectacularly bad) result in the tables; callers
/// must now surface it.
pub fn run_espresso(
    m: &CoverMatrix,
    mode: EspressoMode,
) -> Result<(f64, Duration), EspressoFailed> {
    let t = Instant::now();
    let solution = espresso_like(m, mode).ok_or(EspressoFailed)?;
    Ok((solution.cost(m), t.elapsed()))
}

/// Runs the exact branch-and-bound under a budget; returns the result.
pub fn run_exact(m: &CoverMatrix, node_limit: u64, time_limit: Duration) -> solvers::BnbResult {
    branch_and_bound(
        m,
        &BnbOptions {
            node_limit,
            time_limit: Some(time_limit),
            ..BnbOptions::default()
        },
    )
}

/// Machine-readable results writer for the table/figure binaries.
///
/// Each experiment gets `results/<name>.jsonl` (relative to the working
/// directory — the workspace root under `cargo run`), one schema-versioned
/// JSON line per instance, opened with a `bench_header` line naming the
/// experiment. Write errors are sticky inside the sink and surface from
/// [`BenchLog::finish`] — a bench run cannot silently produce a truncated
/// results file.
pub struct BenchLog {
    sink: JsonlSink<BufWriter<File>>,
    path: PathBuf,
}

impl BenchLog {
    /// Creates (or truncates) `results/<name>.jsonl`.
    pub fn create(name: &str) -> io::Result<BenchLog> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.jsonl"));
        let file = File::create(&path)?;
        let mut sink = JsonlSink::new(BufWriter::new(file));
        sink.write_line("bench_header", |o| {
            o.field_str("bench", name);
        });
        Ok(BenchLog { sink, path })
    }

    /// The file this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one result row with the given event kind.
    pub fn row(&mut self, kind: &str, fill: impl FnOnce(&mut JsonObj)) {
        self.sink.write_line(kind, fill);
    }

    /// Flushes and reports where the results landed; propagates the first
    /// write error if any row was lost.
    pub fn finish(self) -> io::Result<PathBuf> {
        self.sink.finish()?;
        Ok(self.path)
    }
}

/// Convenience: finish a log and print where it wrote, aborting the bench
/// binary with a clear message when the results file could not be written.
pub fn finish_log(log: BenchLog) {
    match log.finish() {
        Ok(path) => eprintln!("results: {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write results file: {e}");
            std::process::exit(1);
        }
    }
}

/// Appends the standard `ZDD_SCG` outcome fields to a results row.
pub fn scg_fields(o: &mut JsonObj, out: &ScgOutcome) {
    o.field_f64("cost", out.cost);
    o.field_f64("lower_bound", out.lower_bound);
    o.field_bool("proven_optimal", out.proven_optimal);
    o.field_bool("infeasible", out.infeasible);
    o.field_u64("iterations", out.iterations as u64);
    o.field_u64("subgradient_iterations", out.subgradient_iterations as u64);
    o.field_u64("restart_workers", out.restart_workers as u64);
    o.field_f64("cc_seconds", out.cc_time.as_secs_f64());
    o.field_f64("total_seconds", out.total_time.as_secs_f64());
    o.field_u64("core_rows", out.core_rows as u64);
    o.field_u64("core_cols", out.core_cols as u64);
    o.field_raw("phase_times", &out.phase_times.to_json());
    o.field_u64("zdd_cache_hits", out.zdd_stats.cache_hits);
    o.field_u64("zdd_cache_misses", out.zdd_stats.cache_misses);
    o.field_u64("zdd_cache_evictions", out.zdd_stats.cache_evictions);
    o.field_u64("zdd_peak_nodes", out.zdd_stats.peak_nodes as u64);
    o.field_u64("zdd_live_nodes", out.zdd_stats.live_nodes as u64);
    o.field_u64("zdd_unique_relocations", out.zdd_stats.unique_relocations);
    o.field_u64("zdd_gc_runs", out.zdd_stats.gc_runs);
    o.field_u64("zdd_gc_reclaimed", out.zdd_stats.gc_reclaimed);
}

/// A minimal fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["Name", "Sol"]);
        t.row(["bench1", "121"]);
        t.row(["x", "9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Name"));
        assert!(lines[2].ends_with("121"));
    }

    #[test]
    fn harness_wrappers_run() {
        let m = CoverMatrix::from_rows(
            5,
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 0]],
        );
        let scg = run_scg(&m, ucp_core::Preset::Fast.options());
        assert_eq!(scg.cost, 3.0);
        let (e, _) = run_espresso(&m, EspressoMode::Normal).expect("feasible instance");
        assert!(e >= 3.0);
        let exact = run_exact(&m, 10_000, Duration::from_secs(5));
        assert!(exact.optimal);
        assert_eq!(exact.cost, 3.0);
    }

    #[test]
    fn espresso_failure_is_surfaced() {
        // An uncoverable row must be an error, not a silent infinite cost.
        let m = CoverMatrix::from_rows(1, vec![vec![]]);
        assert!(run_espresso(&m, EspressoMode::Normal).is_err());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
