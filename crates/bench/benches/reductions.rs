//! Benchmarks of the reduction engines: explicit fixpoint vs the implicit
//! (ZDD) phase, across instance sizes.

use cover::{cyclic_core, CoreOptions, CoverMatrix, ImplicitMatrix, Reducer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use workloads::{random_ucp, RandomUcpConfig};

fn instance(rows: usize) -> CoverMatrix {
    random_ucp(
        &RandomUcpConfig {
            rows,
            cols: rows * 3 / 2,
            min_row_degree: 2,
            max_row_degree: 6,
            ..RandomUcpConfig::default()
        },
        99,
    )
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions");
    group.sample_size(20);
    for &rows in &[50usize, 150, 400] {
        let m = instance(rows);
        group.bench_with_input(BenchmarkId::new("explicit", rows), &m, |b, m| {
            b.iter(|| {
                let mut r = Reducer::new(m);
                r.reduce_to_fixpoint();
                black_box(r.fixed().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("implicit", rows), &m, |b, m| {
            b.iter(|| {
                let mut im = ImplicitMatrix::encode(m);
                black_box(im.reduce().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("cyclic_core", rows), &m, |b, m| {
            b.iter(|| black_box(cyclic_core(m, &CoreOptions::default()).fixed_cols.len()))
        });
        group.bench_with_input(
            BenchmarkId::new("cyclic_core_no_implicit", rows),
            &m,
            |b, m| {
                let opts = CoreOptions {
                    use_implicit: false,
                    ..CoreOptions::default()
                };
                b.iter(|| black_box(cyclic_core(m, &opts).fixed_cols.len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
