//! Benchmarks of the Lagrangian machinery: dual ascent, one subgradient
//! phase, and the greedy heuristics, across cyclic-core sizes.

use cover::CoverMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ucp_core::dual::dual_ascent;
use ucp_core::greedy::{lagrangian_greedy, GammaRule};
use ucp_core::{subgradient_ascent, SubgradientOptions};
use workloads::circulant;

fn bench_lagrangian(c: &mut Criterion) {
    let mut group = c.benchmark_group("lagrangian");
    group.sample_size(15);
    for &n in &[51usize, 201, 801] {
        let m: CoverMatrix = circulant(n, 2);
        group.bench_with_input(BenchmarkId::new("dual_ascent", n), &m, |b, m| {
            b.iter(|| black_box(dual_ascent(m, m.costs(), None).value))
        });
        group.bench_with_input(BenchmarkId::new("greedy_linear", n), &m, |b, m| {
            b.iter(|| black_box(lagrangian_greedy(m, m.costs(), GammaRule::Linear)))
        });
        group.bench_with_input(BenchmarkId::new("greedy_occurrence", n), &m, |b, m| {
            b.iter(|| black_box(lagrangian_greedy(m, m.costs(), GammaRule::Occurrence)))
        });
        let opts = SubgradientOptions {
            max_iters: 100,
            ..SubgradientOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("subgradient_100", n), &m, |b, m| {
            b.iter(|| black_box(subgradient_ascent(m, &opts, None, None).lb))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lagrangian);
criterion_main!(benches);
