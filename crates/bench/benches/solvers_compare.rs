//! End-to-end solver comparison: ZDD_SCG vs the greedy baselines vs exact
//! branch-and-bound, on one seeded instance per size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use solvers::{branch_and_bound, chvatal_greedy, espresso_like, BnbOptions, EspressoMode};
use std::hint::black_box;
use ucp_core::{Preset, Scg, ScgOptions, SolveRequest};
use workloads::{random_ucp, RandomUcpConfig};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    for &rows in &[40usize, 90, 160] {
        let m = random_ucp(
            &RandomUcpConfig {
                rows,
                cols: rows * 3 / 2,
                min_row_degree: 2,
                max_row_degree: 5,
                ..RandomUcpConfig::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::new("chvatal", rows), &m, |b, m| {
            b.iter(|| black_box(chvatal_greedy(m).map(|s| s.cost(m))))
        });
        group.bench_with_input(BenchmarkId::new("espresso_strong", rows), &m, |b, m| {
            b.iter(|| black_box(espresso_like(m, EspressoMode::Strong).map(|s| s.cost(m))))
        });
        group.bench_with_input(BenchmarkId::new("scg_fast", rows), &m, |b, m| {
            let opts = Preset::Fast.options();
            b.iter(|| {
                black_box(
                    Scg::run(SolveRequest::for_matrix(m).options(opts))
                        .unwrap()
                        .cost,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("scg_default", rows), &m, |b, m| {
            let opts = ScgOptions::default();
            b.iter(|| {
                black_box(
                    Scg::run(SolveRequest::for_matrix(m).options(opts))
                        .unwrap()
                        .cost,
                )
            })
        });
        if rows <= 90 {
            group.bench_with_input(BenchmarkId::new("bnb", rows), &m, |b, m| {
                let opts = BnbOptions {
                    node_limit: 200_000,
                    time_limit: None,
                    ..BnbOptions::default()
                };
                b.iter(|| black_box(branch_and_bound(m, &opts).cost))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
