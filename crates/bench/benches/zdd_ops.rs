//! Micro-benchmarks of the ZDD family algebra — the primitives behind the
//! implicit reduction phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use zdd::{NodeId, Var, Zdd};

/// A seeded random family of `sets` sets over `universe` variables.
fn random_family(z: &mut Zdd, universe: u32, sets: usize, seed: u64) -> NodeId {
    let mut rng = StdRng::seed_from_u64(seed);
    let families: Vec<Vec<Var>> = (0..sets)
        .map(|_| {
            let k = rng.random_range(2..=6usize);
            (0..k).map(|_| Var(rng.random_range(0..universe))).collect()
        })
        .collect();
    z.from_sets(families)
}

fn bench_zdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("zdd");
    group.sample_size(20);
    for &sets in &[100usize, 400, 1600] {
        group.bench_with_input(BenchmarkId::new("union", sets), &sets, |b, &sets| {
            b.iter_batched(
                || {
                    let mut z = Zdd::default();
                    let f = random_family(&mut z, 64, sets, 1);
                    let g = random_family(&mut z, 64, sets, 2);
                    (z, f, g)
                },
                |(mut z, f, g)| black_box(z.union(f, g)),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("minimal", sets), &sets, |b, &sets| {
            b.iter_batched(
                || {
                    let mut z = Zdd::default();
                    let f = random_family(&mut z, 64, sets, 3);
                    (z, f)
                },
                |(mut z, f)| black_box(z.minimal(f)),
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("product", sets), &sets, |b, &sets| {
            b.iter_batched(
                || {
                    let mut z = Zdd::default();
                    let f = random_family(&mut z, 64, sets.min(200), 4);
                    let g = random_family(&mut z, 64, sets.min(200), 5);
                    (z, f, g)
                },
                |(mut z, f, g)| black_box(z.product(f, g)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zdd);
criterion_main!(benches);
