//! The Quine–McCluskey reduction: PLA → unate covering instance → minimised
//! PLA.
//!
//! Rows are `(ON-minterm, output)` pairs; columns are candidate product
//! terms `(cube, output set)` where the cube is an implicant of `ON ∪ DC`
//! for every output in the set. Column costs are 1 (the paper's objective:
//! number of products, literals only a secondary concern).
//!
//! **Multi-output fidelity.** Columns start from each output's single-output
//! primes with their *maximal* shared output set, then are closed under
//! pairwise intersection (bounded) so that terms shared between outputs —
//! multi-output primes whose input part is prime for no single output — are
//! available too. The closure is capped; see `DESIGN.md`.

use crate::cube::Cube;
use crate::pla::{Pla, PlaType};
use crate::primes::prime_cubes;
use bdd::{Bdd, BddId};
use cover::{CoverMatrix, Solution};
use std::collections::HashMap;
use std::fmt;

/// Guard on explicit minterm expansion.
const MAX_EXPANSION_INPUTS: usize = 24;
/// Cap on the column closure.
const MAX_COLUMNS: usize = 20_000;

/// A unate covering instance derived from a PLA.
#[derive(Clone, Debug)]
pub struct UcpInstance {
    /// The covering matrix (rows: ON-minterm/output pairs; columns: terms).
    pub matrix: CoverMatrix,
    /// Column meanings: `(input cube, output mask)`.
    pub columns: Vec<(Cube, u64)>,
    /// Row meanings: `(minterm assignment, output index)`.
    pub rows: Vec<(u64, usize)>,
    num_inputs: usize,
    num_outputs: usize,
}

/// Why a covering instance could not be built.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildCoveringError {
    /// Explicit minterm expansion would exceed the supported input count.
    TooManyInputs(usize),
}

impl fmt::Display for BuildCoveringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCoveringError::TooManyInputs(n) => {
                write!(
                    f,
                    "explicit minterm rows need ≤ {MAX_EXPANSION_INPUTS} inputs, got {n}"
                )
            }
        }
    }
}

impl std::error::Error for BuildCoveringError {}

impl UcpInstance {
    /// Number of PLA inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of PLA outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Rebuilds a PLA from a covering solution: one product line per chosen
    /// column, asserting every output in the column's mask.
    ///
    /// # Panics
    ///
    /// Panics if the solution references a column out of range.
    pub fn solution_to_pla(&self, solution: &Solution) -> Pla {
        let mut pla = Pla::new(self.num_inputs, self.num_outputs);
        for &j in solution.cols() {
            let (cube, mask) = self.columns[j];
            pla.push_term(cube, mask, 0);
        }
        pla
    }

    /// Verifies that a candidate PLA realises the original specification:
    /// for every output, `ON ⊆ candidate ⊆ ON ∪ DC`.
    pub fn verify_against(&self, original: &Pla, candidate: &Pla) -> bool {
        if original.num_inputs() != candidate.num_inputs()
            || original.num_outputs() != candidate.num_outputs()
        {
            return false;
        }
        let n = original.num_inputs();
        for o in 0..original.num_outputs() {
            let on = original.on_cover(o);
            let dc = original.dc_cover(o);
            let cand = candidate.on_cover(o);
            for a in 0..1u64 << n {
                let lower = on.eval(a);
                let upper = lower || dc.eval(a);
                let got = cand.eval(a);
                if (lower && !got) || (got && !upper) {
                    return false;
                }
            }
        }
        true
    }
}

/// The column-cost objective.
///
/// The paper's cost function "is assumed to be the number of products …
/// with only a secondary concern given to the number of literals" —
/// [`TermCost::ProductsThenLiterals`] realises exactly that lexicographic
/// objective by pricing each term `1 + ε·literals` with `ε` small enough
/// that literal savings can never outweigh a whole product.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TermCost {
    /// Unit cost per product term (the primary objective alone). Integer
    /// costs keep the `⌈LB⌉` optimality certificate available.
    #[default]
    Products,
    /// `1 + ε·literal_count` per term: minimise products first, literals
    /// second. Costs become fractional, so the integer rounding certificate
    /// is unavailable.
    ProductsThenLiterals,
}

/// Builds the unate covering instance of a PLA with unit term costs.
///
/// # Errors
///
/// Returns [`BuildCoveringError::TooManyInputs`] when the PLA has more than
/// 24 inputs (explicit row enumeration guard).
///
/// # Example
///
/// ```
/// use logic::{build_covering, Pla};
/// let pla: Pla = ".i 2\n.o 1\n11 1\n10 1\n01 1\n.e\n".parse()?;
/// let inst = build_covering(&pla)?;
/// assert_eq!(inst.rows.len(), 3);
/// // Primes of (x0 ∧ x1) ∨ (x0 ∧ ¬x1) ∨ (¬x0 ∧ x1) = x0 ∨ x1: two columns.
/// assert_eq!(inst.columns.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_covering(pla: &Pla) -> Result<UcpInstance, BuildCoveringError> {
    build_covering_with(pla, TermCost::Products)
}

/// Builds the unate covering instance of a PLA under the chosen objective.
///
/// # Errors
///
/// See [`build_covering`].
pub fn build_covering_with(pla: &Pla, cost: TermCost) -> Result<UcpInstance, BuildCoveringError> {
    let n = pla.num_inputs();
    if n > MAX_EXPANSION_INPUTS {
        return Err(BuildCoveringError::TooManyInputs(n));
    }
    let mut mgr = Bdd::default();
    let funcs = pla.output_functions(&mut mgr);
    let uppers: Vec<BddId> = funcs
        .iter()
        .map(|f| {
            let mut m = f.on;
            m = {
                let dc = f.dc;
                mgr.or(m, dc)
            };
            m
        })
        .collect();

    // Per-output primes with their maximal output sets.
    let mut col_mask: HashMap<Cube, u64> = HashMap::new();
    for upper in &uppers {
        for cube in prime_cubes(&mut mgr, *upper) {
            col_mask.entry(cube).or_insert(0);
        }
    }
    // Maximal output set of each cube (implicant test against every upper).
    let cubes: Vec<Cube> = col_mask.keys().copied().collect();
    for cube in cubes {
        let mask = output_set(&mut mgr, &uppers, &cube, n);
        col_mask.insert(cube, mask);
    }

    // Bounded closure under pairwise intersection, so shared multi-output
    // terms become available.
    if pla.num_outputs() > 1 {
        let mut worklist: Vec<Cube> = col_mask.keys().copied().collect();
        while let Some(a) = worklist.pop() {
            if col_mask.len() >= MAX_COLUMNS {
                break;
            }
            let snapshot: Vec<(Cube, u64)> = col_mask.iter().map(|(c, m)| (*c, *m)).collect();
            let mask_a = col_mask[&a];
            for (b, mask_b) in snapshot {
                if mask_a & !mask_b == 0 && mask_b & !mask_a == 0 {
                    continue; // same output set: intersection gains nothing
                }
                if let Some(c) = a.intersect(&b) {
                    if col_mask.contains_key(&c) {
                        continue;
                    }
                    let mask_c = output_set(&mut mgr, &uppers, &c, n);
                    if mask_c & !(mask_a | mask_b) != 0 || (mask_c != mask_a && mask_c != mask_b) {
                        col_mask.insert(c, mask_c);
                        worklist.push(c);
                    }
                    if col_mask.len() >= MAX_COLUMNS {
                        break;
                    }
                }
            }
        }
    }

    // Freeze columns in a deterministic order.
    let mut columns: Vec<(Cube, u64)> = col_mask.into_iter().collect();
    columns.sort();
    // Drop columns that cover no ON-minterm of any output they serve
    // (pure-DC primes).
    let on_minterms: Vec<Vec<u64>> = funcs.iter().map(|f| mgr.minterms(f.on, n as u32)).collect();
    columns.retain(|(cube, mask)| {
        (0..pla.num_outputs())
            .any(|o| mask >> o & 1 == 1 && on_minterms[o].iter().any(|&m| cube.eval(m)))
    });

    // Rows and the sparse matrix.
    let mut rows_meta: Vec<(u64, usize)> = Vec::new();
    for (o, ms) in on_minterms.iter().enumerate() {
        for &m in ms {
            rows_meta.push((m, o));
        }
    }
    let sparse_rows: Vec<Vec<usize>> = rows_meta
        .iter()
        .map(|&(m, o)| {
            columns
                .iter()
                .enumerate()
                .filter(|(_, (cube, mask))| mask >> o & 1 == 1 && cube.eval(m))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    let costs: Vec<f64> = match cost {
        TermCost::Products => vec![1.0; columns.len()],
        TermCost::ProductsThenLiterals => {
            // ε small enough that even every column paying the maximum
            // literal premium sums below one whole product.
            let eps = 1.0 / ((columns.len().max(1) * (n + 1) * 2) as f64);
            columns
                .iter()
                .map(|(cube, _)| 1.0 + eps * f64::from(cube.literal_count()))
                .collect()
        }
    };
    let matrix = CoverMatrix::with_costs(columns.len(), sparse_rows, costs);
    Ok(UcpInstance {
        matrix,
        columns,
        rows: rows_meta,
        num_inputs: n,
        num_outputs: pla.num_outputs(),
    })
}

/// The maximal set of outputs for which `cube` is an implicant of `upper_o`.
fn output_set(mgr: &mut Bdd, uppers: &[BddId], cube: &Cube, n: usize) -> u64 {
    let mut cube_bdd = BddId::TRUE;
    for v in (0..n).rev() {
        if cube.has_pos(v) {
            let lit = mgr.var(v as u32);
            cube_bdd = mgr.and(lit, cube_bdd);
        } else if cube.has_neg(v) {
            let lit = mgr.nvar(v as u32);
            cube_bdd = mgr.and(lit, cube_bdd);
        }
    }
    let mut mask = 0u64;
    for (o, &upper) in uppers.iter().enumerate() {
        if mgr.implies_check(cube_bdd, upper) {
            mask |= 1 << o;
        }
    }
    mask
}

/// Convenience: is this PLA's covering formulation single-output?
pub fn is_single_output(pla: &Pla) -> bool {
    pla.num_outputs() == 1 && pla.pla_type() != PlaType::Fr || pla.num_outputs() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_brute(inst: &UcpInstance) -> Solution {
        let n = inst.matrix.num_cols();
        assert!(n <= 20);
        let mut best: Option<(u32, u32)> = None; // (popcount, mask)
        'mask: for mask in 0u32..(1 << n) {
            for row in inst.matrix.rows() {
                if !row.iter().any(|&j| mask >> j & 1 == 1) {
                    continue 'mask;
                }
            }
            let pc = mask.count_ones();
            if best.is_none_or(|(bpc, _)| pc < bpc) {
                best = Some((pc, mask));
            }
        }
        let (_, mask) = best.expect("coverable");
        Solution::from_cols((0..n).filter(|&j| mask >> j & 1 == 1).collect())
    }

    #[test]
    fn single_output_end_to_end() {
        // f = x0x1 + x0x1' + x0'x1 = x0 + x1: minimised cover is 2 terms.
        let pla: Pla = ".i 2\n.o 1\n11 1\n10 1\n01 1\n.e\n".parse().unwrap();
        let inst = build_covering(&pla).unwrap();
        let sol = solve_brute(&inst);
        assert_eq!(sol.len(), 2);
        let min = inst.solution_to_pla(&sol);
        assert!(inst.verify_against(&pla, &min));
    }

    #[test]
    fn dont_cares_enable_wider_primes() {
        // ON = {11}, DC = {10, 01}: the single prime x0∨... covering 11 with
        // DC help can be 1- or -1 (2^2 grid) — one term suffices.
        let pla: Pla = ".i 2\n.o 1\n11 1\n10 -\n01 -\n.e\n".parse().unwrap();
        let inst = build_covering(&pla).unwrap();
        let sol = solve_brute(&inst);
        assert_eq!(sol.len(), 1);
        let min = inst.solution_to_pla(&sol);
        assert!(inst.verify_against(&pla, &min));
    }

    #[test]
    fn multi_output_sharing() {
        // f0 = x0x1, f1 = x0x1: identical outputs share the single term.
        let pla: Pla = ".i 2\n.o 2\n11 11\n.e\n".parse().unwrap();
        let inst = build_covering(&pla).unwrap();
        let sol = solve_brute(&inst);
        assert_eq!(sol.len(), 1, "one shared term must suffice");
        let min = inst.solution_to_pla(&sol);
        assert!(inst.verify_against(&pla, &min));
    }

    #[test]
    fn shared_intersection_term_is_generated() {
        // f0 = x0x1 (on {11x}), f1 = x0x2: true multi-output prime x0x1x2
        // serves both outputs though it is prime for neither alone.
        let pla: Pla = ".i 3\n.o 2\n11- 10\n1-1 01\n.e\n".parse().unwrap();
        let inst = build_covering(&pla).unwrap();
        let shared = inst
            .columns
            .iter()
            .any(|&(c, mask)| mask == 0b11 && c == "111".parse().unwrap());
        assert!(
            shared,
            "closure should add the shared term: {:?}",
            inst.columns
        );
    }

    #[test]
    fn rows_are_on_minterms_only() {
        let pla: Pla = ".i 2\n.o 1\n11 1\n10 -\n.e\n".parse().unwrap();
        let inst = build_covering(&pla).unwrap();
        assert_eq!(inst.rows, vec![(0b11, 0)]);
    }

    #[test]
    fn too_many_inputs_rejected() {
        let pla = Pla::new(30, 1);
        assert_eq!(
            build_covering(&pla).unwrap_err(),
            BuildCoveringError::TooManyInputs(30)
        );
    }

    #[test]
    fn empty_function_yields_empty_instance() {
        let pla: Pla = ".i 2\n.o 1\n.e\n".parse().unwrap();
        let inst = build_covering(&pla).unwrap();
        assert_eq!(inst.rows.len(), 0);
        assert_eq!(inst.matrix.num_rows(), 0);
    }
}

#[cfg(test)]
mod literal_cost_tests {
    use super::*;
    use crate::pla::Pla;

    #[test]
    fn literal_objective_breaks_ties_by_literals() {
        // ON = {11, 10}: both "1-" (1 literal) and the pair {11,10} cover it;
        // the one-product optimum is "1-"; with literal costs its column is
        // strictly cheaper than any narrower prime.
        let pla: Pla = ".i 2\n.o 1\n11 1\n10 1\n.e\n".parse().unwrap();
        let inst = build_covering_with(&pla, TermCost::ProductsThenLiterals).unwrap();
        assert!(!inst.matrix.integer_costs());
        // Every cost is in (1, 2): a product still dominates any literal sum.
        for &c in inst.matrix.costs() {
            assert!(c > 1.0 && c < 2.0, "cost {c}");
        }
        // Wider cubes (fewer literals) are cheaper.
        let mut by_literals: Vec<(u32, f64)> = inst
            .columns
            .iter()
            .zip(inst.matrix.costs())
            .map(|((cube, _), &c)| (cube.literal_count(), c))
            .collect();
        by_literals.sort_by_key(|&(lits, _)| lits);
        for pair in by_literals.windows(2) {
            assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
    }

    #[test]
    fn product_count_remains_primary() {
        use solvers_free_brute::brute_cover;
        let pla: Pla = ".i 3\n.o 1\n11- 1\n1-1 1\n011 1\n.e\n".parse().unwrap();
        let unit = build_covering(&pla).unwrap();
        let lex = build_covering_with(&pla, TermCost::ProductsThenLiterals).unwrap();
        let unit_opt = brute_cover(&unit.matrix);
        let lex_opt = brute_cover(&lex.matrix);
        // Same number of products in both optima.
        assert_eq!(unit_opt.len(), lex_opt.len());
    }

    /// Tiny local brute-force (kept here to avoid a dev-dependency cycle).
    mod solvers_free_brute {
        use cover::CoverMatrix;

        pub fn brute_cover(m: &CoverMatrix) -> Vec<usize> {
            let n = m.num_cols();
            assert!(n <= 20);
            let mut best: Option<(f64, u32)> = None;
            'mask: for mask in 0u32..(1 << n) {
                for row in m.rows() {
                    if !row.iter().any(|&j| mask >> j & 1 == 1) {
                        continue 'mask;
                    }
                }
                let cost: f64 = (0..n)
                    .filter(|&j| mask >> j & 1 == 1)
                    .map(|j| m.cost(j))
                    .sum();
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, mask));
                }
            }
            let (_, mask) = best.expect("coverable");
            (0..n).filter(|&j| mask >> j & 1 == 1).collect()
        }
    }
}
