//! A cube-level heuristic minimiser in the style of Espresso's
//! EXPAND → IRREDUNDANT → REDUCE loop.
//!
//! Unlike the exact Quine–McCluskey pipeline ([`crate::covering`]), this
//! works directly on the product terms of a [`Pla`] without ever building
//! the covering matrix — the strategy of the tool the paper benchmarks
//! `ZDD_SCG` against. The loop:
//!
//! 1. **EXPAND** — greedily drop literals from each term while it remains an
//!    implicant of `ON ∪ DC` for every output it asserts, then grow its
//!    output set to every output that accepts it;
//! 2. **IRREDUNDANT** — delete terms whose removal leaves every output's
//!    ON-set covered;
//! 3. **REDUCE** — shrink each term to the smallest cube containing the part
//!    of the ON-set only it covers, giving the next EXPAND room to move in a
//!    different direction;
//!
//! iterated until the cover stops improving.

use crate::cube::Cube;
use crate::pla::Pla;
use bdd::{Bdd, BddId};

/// Options for [`minimize`].
#[derive(Clone, Copy, Debug)]
pub struct EspressoOptions {
    /// Maximum EXPAND/IRREDUNDANT/REDUCE sweeps.
    pub max_sweeps: usize,
}

impl Default for EspressoOptions {
    fn default() -> Self {
        EspressoOptions { max_sweeps: 4 }
    }
}

/// Minimises a PLA heuristically; the result is verified to realise the
/// original specification before being returned.
///
/// # Panics
///
/// Panics if internal verification fails (a bug, not a user error).
///
/// # Example
///
/// ```
/// use logic::espresso::minimize;
/// use logic::Pla;
///
/// // Three minterm-rows of x0 ∨ x1 collapse to two products.
/// let pla: Pla = ".i 2\n.o 1\n11 1\n10 1\n01 1\n.e\n".parse()?;
/// let min = minimize(&pla, &Default::default());
/// assert_eq!(min.terms().len(), 2);
/// # Ok::<(), logic::ParsePlaError>(())
/// ```
pub fn minimize(pla: &Pla, opts: &EspressoOptions) -> Pla {
    let n = pla.num_inputs();
    let mut mgr = Bdd::default();
    let funcs = pla.output_functions(&mut mgr);
    let uppers: Vec<BddId> = funcs
        .iter()
        .map(|f| {
            let dc = f.dc;
            mgr.or(f.on, dc)
        })
        .collect();
    let ons: Vec<BddId> = funcs.iter().map(|f| f.on).collect();

    // Working cover: ON-terms only (DC terms guide expansion via `uppers`).
    let mut terms: Vec<(Cube, u64)> = pla
        .terms()
        .iter()
        .filter(|(_, on, _)| *on != 0)
        .map(|&(c, on, _)| (c, on))
        .collect();

    let mut best_len = usize::MAX;
    for _ in 0..opts.max_sweeps {
        expand(&mut mgr, &uppers, n, &mut terms);
        irredundant(&mut mgr, &ons, n, &mut terms);
        if terms.len() >= best_len {
            break;
        }
        best_len = terms.len();
        reduce(&mut mgr, &ons, n, &mut terms);
    }
    // Finish on an expanded, irredundant cover.
    expand(&mut mgr, &uppers, n, &mut terms);
    irredundant(&mut mgr, &ons, n, &mut terms);

    let mut out = Pla::new(n, pla.num_outputs());
    for (c, mask) in terms {
        out.push_term(c, mask, 0);
    }
    assert!(
        realizes(pla, &out),
        "espresso-style minimisation produced a non-equivalent cover"
    );
    out
}

/// `candidate` realises `original`: for every output,
/// `ON ⊆ candidate ⊆ ON ∪ DC`.
pub fn realizes(original: &Pla, candidate: &Pla) -> bool {
    if original.num_inputs() != candidate.num_inputs()
        || original.num_outputs() != candidate.num_outputs()
    {
        return false;
    }
    let mut mgr = Bdd::default();
    let spec = original.output_functions(&mut mgr);
    let got = candidate.output_functions(&mut mgr);
    for (s, g) in spec.iter().zip(&got) {
        let dc = s.dc;
        let upper = mgr.or(s.on, dc);
        if !mgr.implies_check(s.on, g.on) || !mgr.implies_check(g.on, upper) {
            return false;
        }
    }
    true
}

fn cube_bdd(mgr: &mut Bdd, c: &Cube, n: usize) -> BddId {
    let mut acc = BddId::TRUE;
    for v in (0..n).rev() {
        if c.has_pos(v) {
            let lit = mgr.var(v as u32);
            acc = mgr.and(lit, acc);
        } else if c.has_neg(v) {
            let lit = mgr.nvar(v as u32);
            acc = mgr.and(lit, acc);
        }
    }
    acc
}

/// EXPAND: drop literals greedily, then widen output masks.
fn expand(mgr: &mut Bdd, uppers: &[BddId], n: usize, terms: &mut [(Cube, u64)]) {
    for (c, mask) in terms.iter_mut() {
        // Try removing each literal, most recently kept first.
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if c.is_dont_care(v) {
                    continue;
                }
                let wider = Cube::new(c.pos() & !(1 << v), c.neg() & !(1 << v));
                let wbdd = cube_bdd(mgr, &wider, n);
                let ok = (0..uppers.len())
                    .filter(|&o| *mask >> o & 1 == 1)
                    .all(|o| mgr.implies_check(wbdd, uppers[o]));
                if ok {
                    *c = wider;
                    changed = true;
                }
            }
        }
        // Output expansion: assert every output that accepts the cube.
        let cbdd = cube_bdd(mgr, c, n);
        for (o, &upper) in uppers.iter().enumerate() {
            if *mask >> o & 1 == 0 && mgr.implies_check(cbdd, upper) {
                *mask |= 1 << o;
            }
        }
    }
}

/// IRREDUNDANT: greedy removal, widest terms first (they are most likely
/// covered by the rest after expansion of the others).
fn irredundant(mgr: &mut Bdd, ons: &[BddId], n: usize, terms: &mut Vec<(Cube, u64)>) {
    let mut order: Vec<usize> = (0..terms.len()).collect();
    order.sort_by_key(|&i| terms[i].0.literal_count());
    let mut alive: Vec<bool> = vec![true; terms.len()];
    for &i in &order {
        alive[i] = false;
        let redundant = (0..ons.len()).all(|o| {
            // ON_o ⊆ union of remaining terms asserting o.
            let mut cover = BddId::FALSE;
            for (k, &(c, mask)) in terms.iter().enumerate() {
                if alive[k] && mask >> o & 1 == 1 {
                    let cb = cube_bdd(mgr, &c, n);
                    cover = mgr.or(cover, cb);
                }
            }
            mgr.implies_check(ons[o], cover)
        });
        if !redundant {
            alive[i] = true;
        }
    }
    let mut k = 0;
    terms.retain(|_| {
        let keep = alive[k];
        k += 1;
        keep
    });
}

/// REDUCE: shrink each term to the smallest cube containing what only it
/// covers of the ON-sets it serves.
fn reduce(mgr: &mut Bdd, ons: &[BddId], n: usize, terms: &mut [(Cube, u64)]) {
    let snapshot: Vec<(Cube, u64)> = terms.to_vec();
    for (i, (c, mask)) in terms.iter_mut().enumerate() {
        let cbdd = cube_bdd(mgr, c, n);
        // What this term alone must keep covering.
        let mut essential = BddId::FALSE;
        for (o, &on) in ons.iter().enumerate() {
            if *mask >> o & 1 == 0 {
                continue;
            }
            let mut others = BddId::FALSE;
            for (k, &(oc, omask)) in snapshot.iter().enumerate() {
                if k != i && omask >> o & 1 == 1 {
                    let ob = cube_bdd(mgr, &oc, n);
                    others = mgr.or(others, ob);
                }
            }
            let nothers = mgr.not(others);
            let only_mine = mgr.and(on, nothers);
            let mine = mgr.and(only_mine, cbdd);
            essential = mgr.or(essential, mine);
        }
        if essential.is_false() {
            continue; // irredundant pass will deal with it
        }
        *c = smallest_cube_containing(mgr, essential, n);
    }
}

/// The smallest cube whose BDD contains `f` (the supercube of `f`'s onset).
fn smallest_cube_containing(mgr: &mut Bdd, f: BddId, n: usize) -> Cube {
    let mut pos = 0u64;
    let mut neg = 0u64;
    for v in 0..n {
        let f0 = mgr.restrict(f, v as u32, false);
        let f1 = mgr.restrict(f, v as u32, true);
        if f0.is_false() {
            pos |= 1 << v; // f lives entirely in v = 1
        } else if f1.is_false() {
            neg |= 1 << v;
        }
    }
    Cube::new(pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term_count(src: &str) -> usize {
        let pla: Pla = src.parse().unwrap();
        minimize(&pla, &EspressoOptions::default()).terms().len()
    }

    #[test]
    fn collapses_adjacent_minterms() {
        assert_eq!(term_count(".i 2\n.o 1\n11 1\n10 1\n01 1\n.e\n"), 2);
        assert_eq!(term_count(".i 2\n.o 1\n11 1\n10 1\n.e\n"), 1);
    }

    #[test]
    fn uses_dont_cares() {
        // ON {11,00}, DC {10,01}: a single universal cube works.
        assert_eq!(term_count(".i 2\n.o 1\n11 1\n00 1\n10 -\n01 -\n.e\n"), 1);
    }

    #[test]
    fn multi_output_sharing_via_output_expansion() {
        // Identical outputs: one shared term after output expansion.
        assert_eq!(term_count(".i 2\n.o 2\n11 10\n11 01\n.e\n"), 1);
    }

    #[test]
    fn result_always_realizes_spec() {
        let cases = [
            ".i 3\n.o 1\n110 1\n111 1\n011 1\n001 1\n.e\n",
            ".i 3\n.o 2\n11- 10\n1-1 01\n--1 1-\n.e\n",
            ".i 4\n.o 1\n1100 1\n1111 1\n0000 1\n10-0 -\n.e\n",
        ];
        for src in cases {
            let pla: Pla = src.parse().unwrap();
            let min = minimize(&pla, &EspressoOptions::default());
            assert!(realizes(&pla, &min), "case {src:?}");
            assert!(min.terms().len() <= pla.terms().len());
        }
    }

    #[test]
    fn smallest_cube_helper() {
        let mut mgr = Bdd::default();
        let x = mgr.var(0);
        let y = mgr.var(1);
        // f = x ∧ (y ∨ ¬y) restricted… onset {10, 11}: smallest cube is "1-".
        let f = {
            let ny = mgr.not(y);
            let a = mgr.and(x, y);
            let b = mgr.and(x, ny);
            mgr.or(a, b)
        };
        let c = smallest_cube_containing(&mut mgr, f, 2);
        assert_eq!(c, "1-".parse().unwrap());
    }

    #[test]
    fn reduce_expand_cycle_improves_bad_covers() {
        // A deliberately clumsy cover of x0 (split plus overlap).
        let pla: Pla = ".i 3\n.o 1\n1-0 1\n1-1 1\n11- 1\n.e\n".parse().unwrap();
        let min = minimize(&pla, &EspressoOptions::default());
        assert_eq!(min.terms().len(), 1);
        assert_eq!(min.terms()[0].0, "1--".parse().unwrap());
    }

    #[test]
    fn realizes_rejects_wrong_candidates() {
        let spec: Pla = ".i 2\n.o 1\n11 1\n.e\n".parse().unwrap();
        let wrong: Pla = ".i 2\n.o 1\n10 1\n.e\n".parse().unwrap();
        assert!(!realizes(&spec, &wrong));
        let too_big: Pla = ".i 2\n.o 1\n1- 1\n.e\n".parse().unwrap();
        assert!(!realizes(&spec, &too_big));
        let different_shape: Pla = ".i 3\n.o 1\n111 1\n.e\n".parse().unwrap();
        assert!(!realizes(&spec, &different_shape));
    }
}
