//! Prime implicant generation.
//!
//! Two independent engines:
//!
//! * [`prime_implicants`] — the implicit Coudert–Madre recursion over BDDs,
//!   collecting the primes into a ZDD over *literal* variables (positive
//!   literal of input `v` = ZDD var `2v`, negative = `2v + 1`). This is the
//!   technology the paper's pipeline (and Scherzo before it) relies on.
//! * [`primes_by_consensus`] — Quine's iterated consensus + absorption on an
//!   explicit cube list. Exponentially slower but independent, used to
//!   cross-validate the implicit engine in tests.
//!
//! The recursion (Coudert–Madre 1992): with `x` the top variable and
//! `f0`, `f1` its cofactors,
//!
//! ```text
//! P(f) = P(f0 ∧ f1)  ∪  x̄·(P(f0) ∖ P(f0 ∧ f1))  ∪  x·(P(f1) ∖ P(f0 ∧ f1))
//! ```

use crate::cube::Cube;
use bdd::{Bdd, BddId};
use std::collections::HashMap;
use zdd::{NodeId, Var, Zdd};

/// ZDD literal variable for the positive literal of input `v`.
fn pos_lit(v: u32) -> Var {
    Var(2 * v)
}

/// ZDD literal variable for the negative literal of input `v`.
fn neg_lit(v: u32) -> Var {
    Var(2 * v + 1)
}

/// Generates all prime implicants of `f` (a BDD in `mgr`) as a ZDD of
/// literal sets in `zdd`.
///
/// The empty set member represents the universal cube (only for `f = 1`).
///
/// # Example
///
/// ```
/// use bdd::Bdd;
/// use logic::primes::{prime_implicants, decode_primes};
/// use zdd::Zdd;
///
/// let mut mgr = Bdd::default();
/// let x = mgr.var(0);
/// let y = mgr.var(1);
/// let f = mgr.or(x, y);
/// let mut z = Zdd::default();
/// let p = prime_implicants(&mut mgr, &mut z, f);
/// let cubes = decode_primes(&z, p);
/// assert_eq!(cubes.len(), 2); // x and y are the only primes of x ∨ y
/// ```
pub fn prime_implicants(mgr: &mut Bdd, zdd: &mut Zdd, f: BddId) -> NodeId {
    let mut memo: HashMap<BddId, NodeId> = HashMap::new();
    primes_rec(mgr, zdd, f, &mut memo)
}

fn primes_rec(mgr: &mut Bdd, zdd: &mut Zdd, f: BddId, memo: &mut HashMap<BddId, NodeId>) -> NodeId {
    if f.is_false() {
        return NodeId::EMPTY;
    }
    if f.is_true() {
        return NodeId::BASE;
    }
    if let Some(&r) = memo.get(&f) {
        return r;
    }
    let v = mgr.var_of(f);
    let (f0, f1) = (mgr.lo(f), mgr.hi(f));
    let g = mgr.and(f0, f1);
    let pg = primes_rec(mgr, zdd, g, memo);
    let p0 = primes_rec(mgr, zdd, f0, memo);
    let p1 = primes_rec(mgr, zdd, f1, memo);
    let d0 = zdd.difference(p0, pg);
    let d1 = zdd.difference(p1, pg);
    let with_neg = zdd.change(d0, neg_lit(v));
    let with_pos = zdd.change(d1, pos_lit(v));
    let u = zdd.union(pg, with_neg);
    let r = zdd.union(u, with_pos);
    memo.insert(f, r);
    r
}

/// Decodes a ZDD of literal sets into explicit [`Cube`]s.
pub fn decode_primes(zdd: &Zdd, primes: NodeId) -> Vec<Cube> {
    zdd.to_sets(primes)
        .into_iter()
        .map(|lits| {
            let mut pos = 0u64;
            let mut neg = 0u64;
            for lit in lits {
                let v = lit.0 / 2;
                if lit.0 % 2 == 0 {
                    pos |= 1 << v;
                } else {
                    neg |= 1 << v;
                }
            }
            Cube::new(pos, neg)
        })
        .collect()
}

/// Convenience: primes of `f` directly as sorted cubes.
pub fn prime_cubes(mgr: &mut Bdd, f: BddId) -> Vec<Cube> {
    let mut zdd = Zdd::default();
    let p = prime_implicants(mgr, &mut zdd, f);
    let mut cubes = decode_primes(&zdd, p);
    cubes.sort();
    cubes
}

/// Quine's iterated consensus: expands the cube list with all consensus
/// terms, absorbing contained cubes, until a fixpoint. The survivors are
/// exactly the prime implicants of the disjunction.
///
/// Exponential in the worst case; intended for cross-validation and small
/// covers.
pub fn primes_by_consensus(cubes: &[Cube]) -> Vec<Cube> {
    let mut set: Vec<Cube> = Vec::new();
    // Absorption-insert helper.
    fn insert(set: &mut Vec<Cube>, c: Cube) -> bool {
        if set.iter().any(|k| k.contains(&c)) {
            return false;
        }
        set.retain(|k| !c.contains(k));
        set.push(c);
        true
    }
    for &c in cubes {
        insert(&mut set, c);
    }
    loop {
        let mut added = false;
        let snapshot = set.clone();
        for i in 0..snapshot.len() {
            for j in (i + 1)..snapshot.len() {
                if let Some(cons) = snapshot[i].consensus(&snapshot[j]) {
                    if insert(&mut set, cons) {
                        added = true;
                    }
                }
            }
        }
        if !added {
            break;
        }
    }
    set.sort();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cubelist::CubeList;

    /// Brute-force primality check over `n` variables.
    fn is_prime(c: &Cube, f: &dyn Fn(u64) -> bool, n: usize) -> bool {
        // Implicant: every minterm of c satisfies f.
        for a in 0..1u64 << n {
            if c.eval(a) && !f(a) {
                return false;
            }
        }
        // Maximal: dropping any literal breaks implicancy.
        for v in 0..n {
            if c.is_dont_care(v) {
                continue;
            }
            let wider = Cube::new(c.pos() & !(1 << v), c.neg() & !(1 << v));
            let still = (0..1u64 << n).all(|a| !wider.eval(a) || f(a));
            if still {
                return false;
            }
        }
        true
    }

    fn all_primes_brute(f: &dyn Fn(u64) -> bool, n: usize) -> Vec<Cube> {
        let mut out = Vec::new();
        // Enumerate all 3^n cubes.
        fn rec(
            v: usize,
            n: usize,
            pos: u64,
            neg: u64,
            f: &dyn Fn(u64) -> bool,
            out: &mut Vec<Cube>,
        ) {
            if v == n {
                let c = Cube::new(pos, neg);
                if is_prime(&c, f, n) {
                    out.push(c);
                }
                return;
            }
            rec(v + 1, n, pos, neg, f, out);
            rec(v + 1, n, pos | (1 << v), neg, f, out);
            rec(v + 1, n, pos, neg | (1 << v), f, out);
        }
        rec(0, n, 0, 0, f, &mut out);
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn primes_of_or() {
        let mut mgr = Bdd::default();
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.or(x, y);
        let primes = prime_cubes(&mut mgr, f);
        assert_eq!(primes.len(), 2);
        assert!(primes.contains(&"1-".parse().unwrap()));
        assert!(primes.contains(&"-1".parse().unwrap()));
    }

    #[test]
    fn primes_of_xor_are_the_minterm_pairs() {
        let mut mgr = Bdd::default();
        let x = mgr.var(0);
        let y = mgr.var(1);
        let f = mgr.xor(x, y);
        let primes = prime_cubes(&mut mgr, f);
        assert_eq!(primes.len(), 2);
        assert!(primes.contains(&"10".parse().unwrap()));
        assert!(primes.contains(&"01".parse().unwrap()));
    }

    #[test]
    fn tautology_has_universal_prime() {
        let mut mgr = Bdd::default();
        let primes = prime_cubes(&mut mgr, BddId::TRUE);
        assert_eq!(primes, vec![Cube::UNIVERSE]);
        let none = prime_cubes(&mut mgr, BddId::FALSE);
        assert!(none.is_empty());
    }

    #[test]
    fn classic_consensus_example() {
        // f = ab + a'c: primes are ab, a'c and the consensus bc.
        let cover = CubeList::parse(3, &["11-", "0-1"]).unwrap();
        let primes = primes_by_consensus(cover.cubes());
        assert_eq!(primes.len(), 3);
        assert!(primes.contains(&"-11".parse().unwrap()));
    }

    #[test]
    fn implicit_matches_consensus_and_brute_force() {
        let covers = [
            vec!["11-", "0-1"],
            vec!["1-0", "01-", "001"],
            vec!["111", "000"],
            vec!["1--", "-1-", "--1"],
        ];
        for cubes in covers {
            let cover = CubeList::parse(3, &cubes).unwrap();
            let mut mgr = Bdd::default();
            let f_bdd = cover.to_bdd(&mut mgr);
            let implicit = prime_cubes(&mut mgr, f_bdd);
            let consensus = primes_by_consensus(cover.cubes());
            let cl = cover.clone();
            let brute = all_primes_brute(&move |a| cl.eval(a), 3);
            assert_eq!(implicit, consensus, "cover {cubes:?}");
            assert_eq!(implicit, brute, "cover {cubes:?}");
        }
    }

    #[test]
    fn primes_cover_the_function() {
        // Every ON-minterm is covered by at least one prime, and every prime
        // is an implicant.
        let cover = CubeList::parse(4, &["1--0", "01-1", "--11", "0000"]).unwrap();
        let mut mgr = Bdd::default();
        let f_bdd = cover.to_bdd(&mut mgr);
        let primes = prime_cubes(&mut mgr, f_bdd);
        for a in 0..16u64 {
            let on = cover.eval(a);
            let covered = primes.iter().any(|p| p.eval(a));
            if on {
                assert!(covered, "minterm {a:04b} uncovered");
            }
        }
        for p in &primes {
            for a in 0..16u64 {
                if p.eval(a) {
                    assert!(cover.eval(a), "prime {p} not an implicant");
                }
            }
        }
    }
}

/// Implicitly restricts a ZDD of primes (literal encoding of
/// [`prime_implicants`]) to those covering the minterm `m` — the building
/// block of Coudert-style implicit covering-matrix construction: instead of
/// evaluating every prime cube against every minterm, each variable kills
/// the incompatible literal in one `subset0` sweep.
///
/// # Example
///
/// ```
/// use bdd::Bdd;
/// use logic::primes::{decode_primes, prime_implicants, primes_covering_minterm};
/// use zdd::Zdd;
///
/// let mut mgr = Bdd::default();
/// let x = mgr.var(0);
/// let y = mgr.var(1);
/// let f = mgr.or(x, y);
/// let mut z = Zdd::default();
/// let primes = prime_implicants(&mut mgr, &mut z, f);
/// // Minterm 01 (x=1, y=0) is covered only by the prime `x`.
/// let covering = primes_covering_minterm(&mut z, primes, 0b01, 2);
/// let cubes = decode_primes(&z, covering);
/// assert_eq!(cubes.len(), 1);
/// assert!(cubes[0].has_pos(0));
/// ```
pub fn primes_covering_minterm(zdd: &mut Zdd, primes: NodeId, m: u64, n: usize) -> NodeId {
    let mut f = primes;
    for v in 0..n as u32 {
        // A prime covers m iff it has no literal contradicting m at v.
        let bad = if m >> v & 1 == 1 {
            neg_lit(v)
        } else {
            pos_lit(v)
        };
        f = zdd.subset0(f, bad);
    }
    f
}

#[cfg(test)]
mod implicit_filter_tests {
    use super::*;
    use crate::cubelist::CubeList;

    #[test]
    fn implicit_filter_agrees_with_explicit_eval() {
        let cover = CubeList::parse(4, &["1--0", "01-1", "--11", "0000"]).unwrap();
        let mut mgr = Bdd::default();
        let f = cover.to_bdd(&mut mgr);
        let mut z = Zdd::default();
        let primes = prime_implicants(&mut mgr, &mut z, f);
        let all = decode_primes(&z, primes);
        for m in 0..16u64 {
            let filtered = primes_covering_minterm(&mut z, primes, m, 4);
            let mut implicit = decode_primes(&z, filtered);
            implicit.sort();
            let mut explicit: Vec<Cube> = all.iter().copied().filter(|c| c.eval(m)).collect();
            explicit.sort();
            assert_eq!(implicit, explicit, "minterm {m:04b}");
        }
    }

    #[test]
    fn off_minterms_have_no_covering_primes() {
        let cover = CubeList::parse(3, &["11-"]).unwrap();
        let mut mgr = Bdd::default();
        let f = cover.to_bdd(&mut mgr);
        let mut z = Zdd::default();
        let primes = prime_implicants(&mut mgr, &mut z, f);
        let filtered = primes_covering_minterm(&mut z, primes, 0b000, 3);
        assert_eq!(z.count(filtered), 0);
    }
}
