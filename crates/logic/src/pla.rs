//! Berkeley PLA format: parser, writer, and per-output function extraction.

use crate::cube::Cube;
use crate::cubelist::CubeList;
use bdd::{Bdd, BddId};
use std::fmt;
use std::str::FromStr;

/// The PLA logic-type directive, governing how the output plane is read.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlaType {
    /// `.type fd` (the default): `1` = ON, `-`/`2` = DC, `0` = no meaning.
    #[default]
    Fd,
    /// `.type fr`: `1` = ON, `0` = OFF, `-` = no meaning.
    Fr,
    /// `.type f`: `1` = ON, everything else no meaning (OFF is the
    /// complement).
    F,
}

/// A parsed PLA: input cubes with per-output ON/DC membership.
///
/// # Example
///
/// ```
/// use logic::Pla;
/// let pla: Pla = ".i 2\n.o 1\n11 1\n0- 1\n.e\n".parse()?;
/// assert_eq!(pla.num_inputs(), 2);
/// assert_eq!(pla.num_outputs(), 1);
/// assert_eq!(pla.terms().len(), 2);
/// # Ok::<(), logic::ParsePlaError>(())
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Pla {
    num_inputs: usize,
    num_outputs: usize,
    pla_type: PlaType,
    /// `(input cube, ON mask, DC mask)` per product line.
    terms: Vec<(Cube, u64, u64)>,
    input_labels: Option<Vec<String>>,
    output_labels: Option<Vec<String>>,
}

/// One output's ON and DC sets as BDDs in a shared manager.
#[derive(Clone, Copy, Debug)]
pub struct OutputFunction {
    /// The ON-set.
    pub on: BddId,
    /// The don't-care set.
    pub dc: BddId,
}

impl Pla {
    /// Creates an empty PLA with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 63` or `num_outputs > 64`.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        assert!(num_inputs <= crate::cube::MAX_INPUTS, "too many inputs");
        assert!(num_outputs <= 64, "too many outputs");
        Pla {
            num_inputs,
            num_outputs,
            pla_type: PlaType::default(),
            terms: Vec::new(),
            input_labels: None,
            output_labels: None,
        }
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output functions.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The logic type in effect.
    pub fn pla_type(&self) -> PlaType {
        self.pla_type
    }

    /// The product terms: `(input cube, on mask, dc mask)`.
    pub fn terms(&self) -> &[(Cube, u64, u64)] {
        &self.terms
    }

    /// Appends a product term.
    ///
    /// # Panics
    ///
    /// Panics if the masks use bits `≥ num_outputs` or overlap.
    pub fn push_term(&mut self, cube: Cube, on: u64, dc: u64) {
        let limit = if self.num_outputs == 64 {
            u64::MAX
        } else {
            (1u64 << self.num_outputs) - 1
        };
        assert_eq!(on & !limit, 0, "on mask out of range");
        assert_eq!(dc & !limit, 0, "dc mask out of range");
        assert_eq!(on & dc, 0, "a term cannot be both ON and DC");
        self.terms.push((cube, on, dc));
    }

    /// The ON-set cubes of output `o` as a [`CubeList`].
    pub fn on_cover(&self, o: usize) -> CubeList {
        CubeList::from_cubes(
            self.num_inputs,
            self.terms
                .iter()
                .filter(|(_, on, _)| on >> o & 1 == 1)
                .map(|(c, _, _)| *c)
                .collect(),
        )
    }

    /// The DC-set cubes of output `o`.
    pub fn dc_cover(&self, o: usize) -> CubeList {
        CubeList::from_cubes(
            self.num_inputs,
            self.terms
                .iter()
                .filter(|(_, _, dc)| dc >> o & 1 == 1)
                .map(|(c, _, _)| *c)
                .collect(),
        )
    }

    /// Builds ON/DC BDDs for every output in one shared manager.
    pub fn output_functions(&self, mgr: &mut Bdd) -> Vec<OutputFunction> {
        (0..self.num_outputs)
            .map(|o| OutputFunction {
                on: self.on_cover(o).to_bdd(mgr),
                dc: self.dc_cover(o).to_bdd(mgr),
            })
            .collect()
    }

    /// The `.ilb` input labels, if any were declared.
    pub fn input_labels(&self) -> Option<&[String]> {
        self.input_labels.as_deref()
    }

    /// The `.ob` output labels, if any were declared.
    pub fn output_labels(&self) -> Option<&[String]> {
        self.output_labels.as_deref()
    }

    /// Declares input labels (one per input).
    ///
    /// # Panics
    ///
    /// Panics if the label count disagrees with `num_inputs`.
    pub fn set_input_labels(&mut self, labels: Vec<String>) {
        assert_eq!(labels.len(), self.num_inputs, "one label per input");
        self.input_labels = Some(labels);
    }

    /// Declares output labels (one per output).
    ///
    /// # Panics
    ///
    /// Panics if the label count disagrees with `num_outputs`.
    pub fn set_output_labels(&mut self, labels: Vec<String>) {
        assert_eq!(labels.len(), self.num_outputs, "one label per output");
        self.output_labels = Some(labels);
    }

    /// Serialises back to `.pla` text.
    pub fn to_pla_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            ".i {}\n.o {}\n",
            self.num_inputs, self.num_outputs
        ));
        if let Some(labels) = &self.input_labels {
            out.push_str(&format!(".ilb {}\n", labels.join(" ")));
        }
        if let Some(labels) = &self.output_labels {
            out.push_str(&format!(".ob {}\n", labels.join(" ")));
        }
        match self.pla_type {
            PlaType::Fd => {}
            PlaType::Fr => out.push_str(".type fr\n"),
            PlaType::F => out.push_str(".type f\n"),
        }
        out.push_str(&format!(".p {}\n", self.terms.len()));
        for (cube, on, dc) in &self.terms {
            out.push_str(&cube.to_string_width(self.num_inputs));
            out.push(' ');
            for o in 0..self.num_outputs {
                out.push(if on >> o & 1 == 1 {
                    '1'
                } else if dc >> o & 1 == 1 {
                    '-'
                } else {
                    '0'
                });
            }
            out.push('\n');
        }
        out.push_str(".e\n");
        out
    }
}

impl fmt::Display for Pla {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pla_string())
    }
}

/// Error from [`Pla::from_str`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParsePlaError {
    /// `.i`/`.o` directive missing before the first cube line.
    MissingHeader,
    /// A directive had a malformed argument.
    BadDirective(String),
    /// A cube line had the wrong width or bad characters.
    BadCube { line: usize, reason: String },
    /// Inputs/outputs exceed the supported 63/64 limits.
    TooLarge,
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePlaError::MissingHeader => write!(f, "missing .i/.o header"),
            ParsePlaError::BadDirective(d) => write!(f, "malformed directive: {d}"),
            ParsePlaError::BadCube { line, reason } => {
                write!(f, "bad cube on line {line}: {reason}")
            }
            ParsePlaError::TooLarge => write!(f, "PLA exceeds 63 inputs / 64 outputs"),
        }
    }
}

impl std::error::Error for ParsePlaError {}

impl FromStr for Pla {
    type Err = ParsePlaError;

    fn from_str(s: &str) -> Result<Self, ParsePlaError> {
        ucp_failpoints::fail_point!("logic::parse_pla", |payload: String| Err(
            ParsePlaError::BadDirective(payload)
        ));
        let mut ni: Option<usize> = None;
        let mut no: Option<usize> = None;
        let mut pla_type = PlaType::default();
        let mut terms: Vec<(Cube, u64, u64)> = Vec::new();
        let mut input_labels = None;
        let mut output_labels = None;

        for (lineno, raw) in s.lines().enumerate() {
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                let mut it = rest.split_whitespace();
                match it.next() {
                    Some("i") => {
                        ni = Some(parse_num(it.next(), line)?);
                    }
                    Some("o") => {
                        no = Some(parse_num(it.next(), line)?);
                    }
                    Some("p") => {
                        let _ = parse_num(it.next(), line)?; // advisory count
                    }
                    Some("type") => {
                        pla_type = match it.next() {
                            Some("fd") => PlaType::Fd,
                            Some("fr") => PlaType::Fr,
                            Some("f") => PlaType::F,
                            other => {
                                return Err(ParsePlaError::BadDirective(format!(".type {other:?}")))
                            }
                        };
                    }
                    Some("ilb") => {
                        input_labels = Some(it.map(String::from).collect());
                    }
                    Some("ob") => {
                        output_labels = Some(it.map(String::from).collect());
                    }
                    Some("e") | Some("end") => break,
                    _ => {
                        // Unknown directives are skipped (espresso does too).
                    }
                }
                continue;
            }
            // Cube line.
            let (ni, no) = match (ni, no) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ParsePlaError::MissingHeader),
            };
            if ni > crate::cube::MAX_INPUTS || no > 64 {
                return Err(ParsePlaError::TooLarge);
            }
            let compact: String = line.split_whitespace().collect();
            if compact.len() != ni + no {
                return Err(ParsePlaError::BadCube {
                    line: lineno + 1,
                    reason: format!("expected {} characters, got {}", ni + no, compact.len()),
                });
            }
            let (inp, outp) = compact.split_at(ni);
            let cube: Cube = inp.parse().map_err(|e| ParsePlaError::BadCube {
                line: lineno + 1,
                reason: format!("{e}"),
            })?;
            let mut on = 0u64;
            let mut dc = 0u64;
            for (o, ch) in outp.chars().enumerate() {
                match (pla_type, ch) {
                    (_, '1') | (PlaType::F, '4') => on |= 1 << o,
                    (PlaType::Fd, '-') | (PlaType::Fd, '~') | (PlaType::Fd, '2') => dc |= 1 << o,
                    (PlaType::Fr, '-') | (PlaType::Fr, '~') => {}
                    (_, '0') => {}
                    (_, '2') | (_, '-') | (_, '~') => {}
                    (_, bad) => {
                        return Err(ParsePlaError::BadCube {
                            line: lineno + 1,
                            reason: format!("bad output character {bad:?}"),
                        })
                    }
                }
            }
            terms.push((cube, on, dc));
        }

        let (ni, no) = match (ni, no) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(ParsePlaError::MissingHeader),
        };
        if ni > crate::cube::MAX_INPUTS || no > 64 {
            return Err(ParsePlaError::TooLarge);
        }
        let mut pla = Pla::new(ni, no);
        pla.pla_type = pla_type;
        pla.input_labels = input_labels;
        pla.output_labels = output_labels;
        for (c, on, dc) in terms {
            pla.push_term(c, on, dc & !on);
        }
        Ok(pla)
    }
}

fn parse_num(tok: Option<&str>, line: &str) -> Result<usize, ParsePlaError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| ParsePlaError::BadDirective(line.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# two-output sample
.i 3
.o 2
.p 3
11- 10
0-1 1-
--0 01
.e
";

    #[test]
    fn parse_dimensions_and_terms() {
        let pla: Pla = SAMPLE.parse().unwrap();
        assert_eq!(pla.num_inputs(), 3);
        assert_eq!(pla.num_outputs(), 2);
        assert_eq!(pla.terms().len(), 3);
        // Second term: output 0 ON, output 1 DC.
        let (_, on, dc) = pla.terms()[1];
        assert_eq!(on, 0b01);
        assert_eq!(dc, 0b10);
    }

    #[test]
    fn on_and_dc_covers() {
        let pla: Pla = SAMPLE.parse().unwrap();
        assert_eq!(pla.on_cover(0).len(), 2);
        assert_eq!(pla.on_cover(1).len(), 1);
        assert_eq!(pla.dc_cover(1).len(), 1);
        assert_eq!(pla.dc_cover(0).len(), 0);
    }

    #[test]
    fn roundtrip_through_text() {
        let pla: Pla = SAMPLE.parse().unwrap();
        let text = pla.to_pla_string();
        let again: Pla = text.parse().unwrap();
        assert_eq!(pla, again);
    }

    #[test]
    fn fr_type_zero_is_off_not_dc() {
        let src = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n";
        let pla: Pla = src.parse().unwrap();
        assert_eq!(pla.pla_type(), PlaType::Fr);
        assert_eq!(pla.dc_cover(0).len(), 0);
        assert_eq!(pla.on_cover(0).len(), 1);
    }

    #[test]
    fn errors_are_informative() {
        assert_eq!(
            "11 1".parse::<Pla>().unwrap_err(),
            ParsePlaError::MissingHeader
        );
        let bad = ".i 2\n.o 1\n111 1\n.e\n";
        assert!(matches!(
            bad.parse::<Pla>().unwrap_err(),
            ParsePlaError::BadCube { .. }
        ));
        let badtype = ".i 1\n.o 1\n.type xyz\n";
        assert!(matches!(
            badtype.parse::<Pla>().unwrap_err(),
            ParsePlaError::BadDirective(_)
        ));
    }

    #[test]
    fn output_functions_agree_with_covers() {
        let pla: Pla = SAMPLE.parse().unwrap();
        let mut mgr = Bdd::default();
        let fs = pla.output_functions(&mut mgr);
        assert_eq!(fs.len(), 2);
        for a in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|v| a >> v & 1 == 1).collect();
            assert_eq!(mgr.eval(fs[0].on, &bits), pla.on_cover(0).eval(a));
            assert_eq!(mgr.eval(fs[1].dc, &bits), pla.dc_cover(1).eval(a));
        }
    }

    #[test]
    fn labels_roundtrip() {
        let src = ".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n.e\n";
        let pla: Pla = src.parse().unwrap();
        assert_eq!(
            pla.input_labels(),
            Some(&["a".to_string(), "b".to_string()][..])
        );
        assert_eq!(pla.output_labels(), Some(&["f".to_string()][..]));
        let again: Pla = pla.to_pla_string().parse().unwrap();
        assert_eq!(pla, again);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "# header\n\n.i 1\n.o 1\n# mid\n1 1\n.e\n";
        let pla: Pla = src.parse().unwrap();
        assert_eq!(pla.terms().len(), 1);
    }
}
