//! Cubes (product terms) over up to 63 input variables.
//!
//! A cube is a conjunction of literals, stored as two bitmasks: `pos` for
//! positive literals, `neg` for negated ones. A variable in neither mask is
//! a don't-care. The masks are disjoint by construction (a variable in both
//! would make the cube empty).

use std::fmt;
use std::str::FromStr;

/// Maximum number of input variables a [`Cube`] can carry.
pub const MAX_INPUTS: usize = 63;

/// A product term over input variables `0..n ≤ 63`.
///
/// # Example
///
/// ```
/// use logic::Cube;
/// let c: Cube = "1-0".parse()?;
/// assert!(c.has_pos(0));
/// assert!(c.is_dont_care(1));
/// assert!(c.has_neg(2));
/// assert_eq!(c.to_string_width(3), "1-0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Cube {
    pos: u64,
    neg: u64,
}

impl Cube {
    /// The universal cube (no literals; covers every minterm).
    pub const UNIVERSE: Cube = Cube { pos: 0, neg: 0 };

    /// Builds a cube from literal masks.
    ///
    /// # Panics
    ///
    /// Panics if the masks overlap (the cube would be empty) or touch bit 63.
    pub fn new(pos: u64, neg: u64) -> Self {
        assert_eq!(pos & neg, 0, "contradictory literals");
        assert_eq!((pos | neg) >> MAX_INPUTS, 0, "variable index out of range");
        Cube { pos, neg }
    }

    /// The cube of a single minterm (all `n` variables assigned).
    pub fn minterm(assignment: u64, n: usize) -> Self {
        assert!(n <= MAX_INPUTS);
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        Cube {
            pos: assignment & mask,
            neg: !assignment & mask,
        }
    }

    /// Positive-literal mask.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Negative-literal mask.
    #[inline]
    pub fn neg(&self) -> u64 {
        self.neg
    }

    /// Returns `true` if variable `v` appears positively.
    #[inline]
    pub fn has_pos(&self, v: usize) -> bool {
        self.pos >> v & 1 == 1
    }

    /// Returns `true` if variable `v` appears negated.
    #[inline]
    pub fn has_neg(&self, v: usize) -> bool {
        self.neg >> v & 1 == 1
    }

    /// Returns `true` if variable `v` is free in this cube.
    #[inline]
    pub fn is_dont_care(&self, v: usize) -> bool {
        !self.has_pos(v) && !self.has_neg(v)
    }

    /// Number of literals.
    pub fn literal_count(&self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// Set-containment: `self ⊇ other` as sets of minterms — every literal
    /// of `self` appears in `other`.
    ///
    /// # Example
    ///
    /// ```
    /// use logic::Cube;
    /// let wide: Cube = "1--".parse().unwrap();
    /// let narrow: Cube = "10-".parse().unwrap();
    /// assert!(wide.contains(&narrow));
    /// assert!(!narrow.contains(&wide));
    /// ```
    pub fn contains(&self, other: &Cube) -> bool {
        self.pos & other.pos == self.pos && self.neg & other.neg == self.neg
    }

    /// Intersection (conjunction), `None` when contradictory.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let pos = self.pos | other.pos;
        let neg = self.neg | other.neg;
        if pos & neg != 0 {
            None
        } else {
            Some(Cube { pos, neg })
        }
    }

    /// Hamming-style distance: number of variables on which the cubes take
    /// opposite literals.
    pub fn distance(&self, other: &Cube) -> u32 {
        ((self.pos & other.neg) | (self.neg & other.pos)).count_ones()
    }

    /// Quine consensus: defined when the distance is exactly 1; merges the
    /// two cubes across the conflicting variable.
    ///
    /// # Example
    ///
    /// ```
    /// use logic::Cube;
    /// let a: Cube = "10-".parse().unwrap();
    /// let b: Cube = "11-".parse().unwrap();
    /// // a ∪ b collapse to 1-- via consensus on variable 1.
    /// assert_eq!(a.consensus(&b), Some("1--".parse().unwrap()));
    /// ```
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) != 1 {
            return None;
        }
        let conflict = (self.pos & other.neg) | (self.neg & other.pos);
        let pos = (self.pos | other.pos) & !conflict;
        let neg = (self.neg | other.neg) & !conflict;
        if pos & neg != 0 {
            return None;
        }
        Some(Cube { pos, neg })
    }

    /// The smallest cube containing both (drop every conflicting or
    /// one-sided literal).
    pub fn supercube(&self, other: &Cube) -> Cube {
        Cube {
            pos: self.pos & other.pos,
            neg: self.neg & other.neg,
        }
    }

    /// Evaluates the cube on a full assignment (bit `v` = value of var `v`).
    pub fn eval(&self, assignment: u64) -> bool {
        (self.pos & !assignment) == 0 && (self.neg & assignment) == 0
    }

    /// Cofactor with respect to `v = val`: `None` if the cube is false
    /// there; otherwise the cube with the literal removed.
    pub fn cofactor(&self, v: usize, val: bool) -> Option<Cube> {
        if val && self.has_neg(v) || !val && self.has_pos(v) {
            return None;
        }
        let bit = 1u64 << v;
        Some(Cube {
            pos: self.pos & !bit,
            neg: self.neg & !bit,
        })
    }

    /// Number of minterms over `n` variables.
    pub fn minterm_count(&self, n: usize) -> u64 {
        1u64 << (n as u32 - self.literal_count())
    }

    /// Renders with explicit width (one char per variable: `0`, `1`, `-`).
    pub fn to_string_width(&self, n: usize) -> String {
        (0..n)
            .map(|v| {
                if self.has_pos(v) {
                    '1'
                } else if self.has_neg(v) {
                    '0'
                } else {
                    '-'
                }
            })
            .collect()
    }
}

impl Default for Cube {
    fn default() -> Self {
        Cube::UNIVERSE
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = 64 - (self.pos | self.neg).leading_zeros() as usize;
        write!(f, "{}", self.to_string_width(width.max(1)))
    }
}

/// Error from parsing a cube string.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParseCubeError {
    /// Offending character.
    pub ch: char,
    /// Its position.
    pub index: usize,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character {:?} at index {}",
            self.ch, self.index
        )
    }
}

impl std::error::Error for ParseCubeError {}

impl FromStr for Cube {
    type Err = ParseCubeError;

    /// Parses espresso input-plane notation: `0`, `1`, `-` (or `~`/`2` as
    /// don't-care synonyms).
    fn from_str(s: &str) -> Result<Self, ParseCubeError> {
        let mut pos = 0u64;
        let mut neg = 0u64;
        for (i, ch) in s.chars().enumerate() {
            if i >= MAX_INPUTS {
                return Err(ParseCubeError { ch, index: i });
            }
            match ch {
                '1' => pos |= 1 << i,
                '0' => neg |= 1 << i,
                '-' | '~' | '2' => {}
                _ => return Err(ParseCubeError { ch, index: i }),
            }
        }
        Ok(Cube { pos, neg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["1-0", "---", "0101", "1"] {
            let c: Cube = s.parse().unwrap();
            assert_eq!(c.to_string_width(s.len()), s);
        }
        assert!("1x0".parse::<Cube>().is_err());
    }

    #[test]
    fn containment_is_literal_subset() {
        let a: Cube = "1--".parse().unwrap();
        let b: Cube = "1-0".parse().unwrap();
        assert!(a.contains(&b));
        assert!(a.contains(&a));
        assert!(!b.contains(&a));
        assert!(Cube::UNIVERSE.contains(&a));
    }

    #[test]
    fn intersection_and_conflict() {
        let a: Cube = "1--".parse().unwrap();
        let b: Cube = "-0-".parse().unwrap();
        assert_eq!(a.intersect(&b), Some("10-".parse().unwrap()));
        let c: Cube = "0--".parse().unwrap();
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn consensus_at_distance_one_only() {
        let a: Cube = "10-".parse().unwrap();
        let b: Cube = "11-".parse().unwrap();
        assert_eq!(a.consensus(&b), Some("1--".parse().unwrap()));
        let far: Cube = "011".parse().unwrap();
        assert_eq!(a.distance(&far), 2);
        assert_eq!(a.consensus(&far), None);
        // Distance 0 → no consensus.
        assert_eq!(a.consensus(&a), None);
    }

    #[test]
    fn consensus_generates_crossing_term() {
        // Classic: ab + a'c ⇒ consensus bc.
        let ab: Cube = "11-".parse().unwrap();
        let a_c: Cube = "0-1".parse().unwrap();
        assert_eq!(ab.consensus(&a_c), Some("-11".parse().unwrap()));
    }

    #[test]
    fn minterm_helpers() {
        let m = Cube::minterm(0b101, 3);
        assert_eq!(m.to_string_width(3), "101");
        assert!(m.eval(0b101));
        assert!(!m.eval(0b100));
        assert_eq!(m.minterm_count(3), 1);
        assert_eq!(Cube::UNIVERSE.minterm_count(3), 8);
    }

    #[test]
    fn eval_semantics() {
        let c: Cube = "1-0".parse().unwrap();
        assert!(c.eval(0b001));
        assert!(c.eval(0b011));
        assert!(!c.eval(0b000)); // needs x0=1
        assert!(!c.eval(0b101)); // needs x2=0
    }

    #[test]
    fn cofactor_removes_literal() {
        let c: Cube = "1-0".parse().unwrap();
        assert_eq!(c.cofactor(0, true), Some("--0".parse().unwrap()));
        assert_eq!(c.cofactor(0, false), None);
        assert_eq!(c.cofactor(1, true), Some("1-0".parse().unwrap()));
    }

    #[test]
    fn supercube_is_smallest_container() {
        let a: Cube = "10-".parse().unwrap();
        let b: Cube = "11-".parse().unwrap();
        let s = a.supercube(&b);
        assert!(s.contains(&a) && s.contains(&b));
        assert_eq!(s, "1--".parse().unwrap());
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn overlapping_masks_panic() {
        let _ = Cube::new(0b1, 0b1);
    }
}
