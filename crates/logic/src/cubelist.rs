//! Lists of cubes (sums of products) with the classical cover operations.

use crate::cube::Cube;
use bdd::{Bdd, BddId};

/// A sum of products over `num_inputs` variables.
///
/// # Example
///
/// ```
/// use logic::CubeList;
/// let f = CubeList::parse(3, &["11-", "0-1"])?;
/// assert!(f.eval(0b011)); // 110 pattern? bit0=1,bit1=1 ⇒ covered by "11-"
/// assert_eq!(f.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CubeList {
    num_inputs: usize,
    cubes: Vec<Cube>,
}

impl CubeList {
    /// Creates an empty (constant-false) cover.
    pub fn new(num_inputs: usize) -> Self {
        assert!(num_inputs <= crate::cube::MAX_INPUTS);
        CubeList {
            num_inputs,
            cubes: Vec::new(),
        }
    }

    /// Builds a cover from cubes.
    pub fn from_cubes(num_inputs: usize, cubes: Vec<Cube>) -> Self {
        assert!(num_inputs <= crate::cube::MAX_INPUTS);
        CubeList { num_inputs, cubes }
    }

    /// Parses a list of espresso-style cube strings.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseCubeError`](crate::cube::ParseCubeError)
    /// for a malformed string.
    pub fn parse(num_inputs: usize, cubes: &[&str]) -> Result<Self, crate::cube::ParseCubeError> {
        let cubes: Result<Vec<Cube>, _> = cubes.iter().map(|s| s.parse()).collect();
        Ok(CubeList::from_cubes(num_inputs, cubes?))
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Returns `true` when the cover is empty (constant false).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube.
    pub fn push(&mut self, c: Cube) {
        self.cubes.push(c);
    }

    /// Evaluates the disjunction on a full assignment.
    pub fn eval(&self, assignment: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Removes cubes contained in other cubes (single-cube absorption).
    pub fn absorb(&mut self) {
        let mut keep: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        let mut cubes = self.cubes.clone();
        // Wider cubes first so narrow ones get absorbed.
        cubes.sort_by_key(|c| c.literal_count());
        for c in cubes {
            if !keep.iter().any(|k| k.contains(&c)) {
                keep.push(c);
            }
        }
        self.cubes = keep;
    }

    /// Builds the BDD of this cover in `mgr`.
    pub fn to_bdd(&self, mgr: &mut Bdd) -> BddId {
        let mut acc = BddId::FALSE;
        for c in &self.cubes {
            let mut cube_bdd = BddId::TRUE;
            // Build bottom-up (highest variable first) for linear work.
            for v in (0..self.num_inputs).rev() {
                if c.has_pos(v) {
                    let lit = mgr.var(v as u32);
                    cube_bdd = mgr.and(lit, cube_bdd);
                } else if c.has_neg(v) {
                    let lit = mgr.nvar(v as u32);
                    cube_bdd = mgr.and(lit, cube_bdd);
                }
            }
            acc = mgr.or(acc, cube_bdd);
        }
        acc
    }

    /// Tautology check by Shannon expansion with unate shortcuts.
    ///
    /// # Example
    ///
    /// ```
    /// use logic::CubeList;
    /// let t = CubeList::parse(2, &["1-", "0-"]).unwrap();
    /// assert!(t.is_tautology());
    /// let f = CubeList::parse(2, &["1-"]).unwrap();
    /// assert!(!f.is_tautology());
    /// ```
    pub fn is_tautology(&self) -> bool {
        taut_rec(&self.cubes, self.num_inputs)
    }

    /// Checks whether a cube is contained in (implied by) the cover:
    /// `c ⊆ Σ cubes` iff the cofactor of the cover by `c` is a tautology.
    pub fn contains_cube(&self, c: &Cube) -> bool {
        let mut cof: Vec<Cube> = Vec::new();
        for k in &self.cubes {
            if let Some(r) = cofactor_by_cube(k, c) {
                cof.push(r);
            }
        }
        taut_rec(&cof, self.num_inputs)
    }

    /// Enumerates all satisfying minterms (assignments) of the cover.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 24` (explicit expansion guard).
    pub fn minterms(&self) -> Vec<u64> {
        assert!(
            self.num_inputs <= 24,
            "explicit minterm expansion too large"
        );
        (0..1u64 << self.num_inputs)
            .filter(|&a| self.eval(a))
            .collect()
    }
}

/// Cofactor of cube `k` with respect to cube `c` (restrict `k` to the
/// subspace where `c` holds): `None` if they conflict.
fn cofactor_by_cube(k: &Cube, c: &Cube) -> Option<Cube> {
    k.intersect(c)?;
    // Drop from k every literal fixed by c.
    let fixed = c.pos() | c.neg();
    Some(Cube::new(k.pos() & !fixed, k.neg() & !fixed))
}

/// Recursive tautology with the standard shortcuts.
fn taut_rec(cubes: &[Cube], n: usize) -> bool {
    // A universal cube makes it a tautology.
    if cubes.iter().any(|c| c.literal_count() == 0) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    // Unate reduction: if some variable appears in only one phase across all
    // cubes, the cover is a tautology iff the cubes free of that variable
    // form one (setting the variable against the phase kills the others).
    let mut any_pos = 0u64;
    let mut any_neg = 0u64;
    for c in cubes {
        any_pos |= c.pos();
        any_neg |= c.neg();
    }
    let unate = (any_pos ^ any_neg) & (any_pos | any_neg);
    if unate != 0 {
        let v = unate.trailing_zeros() as usize;
        let reduced: Vec<Cube> = cubes
            .iter()
            .filter(|c| c.is_dont_care(v))
            .copied()
            .collect();
        return taut_rec(&reduced, n);
    }
    // Branch on the most frequent binate variable.
    let mut counts = vec![0usize; n];
    for c in cubes {
        for (v, count) in counts.iter_mut().enumerate() {
            if !c.is_dont_care(v) {
                *count += 1;
            }
        }
    }
    let v = match counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .max_by_key(|&(_, &c)| c)
    {
        Some((v, _)) => v,
        None => return false, // no literals at all and no universal cube
    };
    for val in [false, true] {
        let cof: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(v, val)).collect();
        if !taut_rec(&cof, n) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_minterms() {
        let f = CubeList::parse(3, &["11-", "0-1"]).unwrap();
        let ms = f.minterms();
        // 11-: {011,111}; 0-1: {100,110}. Bit v of the assignment is var v.
        let expected: Vec<u64> = vec![0b011, 0b100, 0b110, 0b111];
        assert_eq!(ms, expected);
    }

    #[test]
    fn absorb_removes_contained() {
        let mut f = CubeList::parse(3, &["1--", "10-", "011"]).unwrap();
        f.absorb();
        assert_eq!(f.len(), 2);
        assert!(f.cubes().contains(&"1--".parse().unwrap()));
    }

    #[test]
    fn tautology_cases() {
        assert!(CubeList::parse(1, &["-"]).unwrap().is_tautology());
        assert!(CubeList::parse(2, &["1-", "0-"]).unwrap().is_tautology());
        assert!(CubeList::parse(2, &["11", "10", "0-"])
            .unwrap()
            .is_tautology());
        assert!(!CubeList::parse(2, &["11", "00"]).unwrap().is_tautology());
        assert!(!CubeList::new(2).is_tautology());
    }

    #[test]
    fn tautology_matches_bdd() {
        // Cross-check on a handful of covers.
        let covers = [
            vec!["1--", "01-", "001", "000"],
            vec!["1-1", "0--", "1-0"],
            vec!["11-", "1-1", "-11"],
        ];
        for cubes in covers {
            let f = CubeList::parse(3, &cubes).unwrap();
            let mut mgr = Bdd::default();
            let b = f.to_bdd(&mut mgr);
            assert_eq!(f.is_tautology(), b.is_true(), "cover {cubes:?}");
        }
    }

    #[test]
    fn contains_cube_matches_semantics() {
        let f = CubeList::parse(3, &["11-", "0-1"]).unwrap();
        assert!(f.contains_cube(&"111".parse().unwrap()));
        assert!(f.contains_cube(&"11-".parse().unwrap()));
        assert!(!f.contains_cube(&"1--".parse().unwrap()));
        assert!(!f.contains_cube(&"--1".parse().unwrap()));
    }

    #[test]
    fn to_bdd_matches_eval() {
        let f = CubeList::parse(4, &["1--0", "01-1", "--11"]).unwrap();
        let mut mgr = Bdd::default();
        let b = f.to_bdd(&mut mgr);
        for a in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|v| a >> v & 1 == 1).collect();
            assert_eq!(mgr.eval(b, &bits), f.eval(a), "assignment {a:04b}");
        }
    }
}
