//! Two-level logic: cube algebra, PLA parsing, prime implicants, and the
//! Quine–McCluskey reduction of two-level minimisation to unate covering.
//!
//! This crate is the front end of the pipeline the paper evaluates on the
//! Berkeley PLA test set:
//!
//! 1. parse a [`Pla`] (Berkeley `.pla` format, with don't-cares),
//! 2. build BDDs of every output's ON/DC sets ([`Pla::output_functions`]),
//! 3. generate all **prime implicants** — implicitly via the Coudert–Madre
//!    BDD→ZDD recursion ([`primes::prime_implicants`]) or explicitly by
//!    iterated consensus ([`primes::primes_by_consensus`]),
//! 4. emit the covering matrix whose rows are ON-set minterms and whose
//!    columns are primes ([`covering::build_covering`]), ready for any
//!    solver in `ucp-core`/`ucp-solvers`,
//! 5. turn a covering solution back into a minimised PLA
//!    ([`covering::UcpInstance::solution_to_pla`]).
//!
//! # Example: minimising a tiny function end to end
//!
//! ```
//! use logic::{covering::build_covering, Pla};
//!
//! let src = "\
//! .i 3
//! .o 1
//! 11- 1
//! 1-1 1
//! 011 1
//! .e
//! ";
//! let pla: Pla = src.parse()?;
//! let inst = build_covering(&pla)?;
//! // Every ON-minterm is a row; every prime a column.
//! assert!(inst.matrix.num_rows() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod covering;
pub mod cube;
pub mod cubelist;
pub mod espresso;
pub mod pla;
pub mod primes;

pub use covering::{
    build_covering, build_covering_with, BuildCoveringError, TermCost, UcpInstance,
};
pub use cube::Cube;
pub use cubelist::CubeList;
pub use pla::{ParsePlaError, Pla, PlaType};
