//! Property tests over random small functions: prime generation agrees with
//! brute force, and end-to-end minimisation preserves the specification.

use logic::covering::build_covering;
use logic::primes::{prime_cubes, primes_by_consensus};
use logic::{Cube, CubeList, Pla};
use proptest::prelude::*;

const N: usize = 4;

fn random_cover() -> impl Strategy<Value = CubeList> {
    let cube = (0u64..81).prop_map(|mut code| {
        // Base-3 encoding of a 4-var cube.
        let mut pos = 0u64;
        let mut neg = 0u64;
        for v in 0..N {
            match code % 3 {
                0 => {}
                1 => pos |= 1 << v,
                _ => neg |= 1 << v,
            }
            code /= 3;
        }
        Cube::new(pos, neg)
    });
    prop::collection::vec(cube, 1..6).prop_map(|cubes| CubeList::from_cubes(N, cubes))
}

fn truth_table(f: &CubeList) -> u16 {
    let mut t = 0u16;
    for a in 0..1u64 << N {
        if f.eval(a) {
            t |= 1 << a;
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn implicit_primes_match_consensus(f in random_cover()) {
        let mut mgr = bdd::Bdd::default();
        let b = f.to_bdd(&mut mgr);
        let implicit = prime_cubes(&mut mgr, b);
        let consensus = primes_by_consensus(f.cubes());
        prop_assert_eq!(implicit, consensus);
    }

    #[test]
    fn primes_are_implicants_and_maximal(f in random_cover()) {
        let mut mgr = bdd::Bdd::default();
        let b = f.to_bdd(&mut mgr);
        let primes = prime_cubes(&mut mgr, b);
        let tt = truth_table(&f);
        for p in &primes {
            // Implicant.
            for a in 0..1u64 << N {
                if p.eval(a) {
                    prop_assert!(tt >> a & 1 == 1, "prime {p} outside f");
                }
            }
            // Maximal: dropping any literal leaves f.
            for v in 0..N {
                if p.is_dont_care(v) {
                    continue;
                }
                let wider = Cube::new(p.pos() & !(1 << v), p.neg() & !(1 << v));
                let escapes = (0..1u64 << N).any(|a| wider.eval(a) && tt >> a & 1 == 0);
                prop_assert!(escapes, "prime {p} not maximal at var {v}");
            }
        }
    }

    #[test]
    fn tautology_agrees_with_truth_table(f in random_cover()) {
        prop_assert_eq!(f.is_tautology(), truth_table(&f) == 0xFFFF);
    }

    #[test]
    fn covering_solution_realises_function(f in random_cover()) {
        // Build a single-output PLA from the cover, minimise by greedy over
        // the UCP, and check the result realises the same function.
        let mut pla = Pla::new(N, 1);
        for &c in f.cubes() {
            pla.push_term(c, 1, 0);
        }
        let inst = build_covering(&pla).unwrap();
        // Quick feasible solution: for each row pick its first column.
        let mut sol = cover::Solution::new();
        for i in 0..inst.matrix.num_rows() {
            let row = inst.matrix.row(i);
            if !row.iter().any(|&j| sol.contains(j)) {
                sol.insert(row[0]);
            }
        }
        sol.make_irredundant(&inst.matrix);
        let min = inst.solution_to_pla(&sol);
        prop_assert!(inst.verify_against(&pla, &min));
        // And it never uses more terms than the original cover had primes.
        prop_assert!(min.terms().len() <= inst.columns.len());
    }
}
