//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the *small* slice of the `rand` API the workspace actually uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`RngExt::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms and plenty for stochastic
//! restarts, tie-break noise and instance generation. It makes no attempt at
//! cryptographic quality and is not the upstream `StdRng` algorithm, so
//! seeded streams differ from real `rand`; everything in this repository
//! only relies on *reproducibility*, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Core trait of random generators: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods (the `rand` 0.9+ `random_range` surface).
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<G: RngCore> RngExt for G {}

/// Ranges that know how to sample themselves from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform integer in `[0, span)` by 128-bit multiply (Lemire reduction,
/// without the rejection step — bias is ≪ 2⁻⁴⁰ for the spans used here).
#[inline]
fn below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(1..=4);
            assert!((1..=4).contains(&y));
            let z: f64 = rng.random_range(0.0..3.0);
            assert!((0.0..3.0).contains(&z));
            let w: u64 = rng.random_range(0..1024);
            assert!(w < 1024);
        }
    }

    #[test]
    fn all_values_reachable_on_small_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let v: usize = rng.random_range(4..=4);
        assert_eq!(v, 4);
    }
}
