//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the small benchmarking surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It measures wall-clock
//! time with a short auto-calibrated loop and prints a one-line summary per
//! benchmark — no statistics, plots or HTML reports. Timings are indicative,
//! not rigorous; the point is that `cargo bench` builds, runs and surfaces
//! regressions at order-of-magnitude resolution without the real crate.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working like upstream.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped between setup calls. The shim times each
/// routine invocation individually, so the variants are equivalent here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`, as in upstream criterion.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _c: self,
            name,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration pass: run once to size the measurement loop so each
        // sample takes roughly TARGET per-sample wall time.
        f(&mut b, input);
        const TARGET: Duration = Duration::from_millis(20);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b, input);
            let per_iter = b.elapsed / iters as u32;
            best = best.min(per_iter);
            total += per_iter;
        }
        let mean = total / self.sample_size as u32;
        eprintln!(
            "  {}/{}: mean {:>12?}  best {:>12?}  ({} iters x {} samples)",
            self.name, id.name, mean, best, iters, self.sample_size
        );
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &()),
    {
        self.bench_with_input(BenchmarkId::from_parameter(name), &(), f)
    }

    pub fn finish(&mut self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, excluding per-iteration `setup` cost.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Bundles benchmark functions into a single runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("batched", 8), &8usize, |b, &n| {
            b.iter_batched(
                || vec![1u64; n],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    criterion_group!(smoke, demo_bench);

    #[test]
    fn runner_completes() {
        smoke();
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        let id = BenchmarkId::new("reduce", 42);
        assert_eq!(id.name, "reduce/42");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
