//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of proptest this workspace uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, `prop::collection::{vec, btree_set}`, the
//! [`proptest!`][crate::proptest] test macro with `#![proptest_config(..)]`,
//! and the `prop_assert*` / `prop_assume!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs but is not
//!   minimised.
//! * **Deterministic seeding** — each test derives its RNG stream from the
//!   test name, so runs are reproducible without a regression file (the
//!   `.proptest-regressions` files in the tree are ignored).
//! * Collection size ranges give the number of *generation attempts* for
//!   set-like collections; duplicates collapse, exactly as upstream.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Test-case control flow: rejection (via `prop_assume!`) or failure.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Strategies: typed recipes for generating random values.
pub mod strategy {
    use super::*;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// The RNG handed to strategies (a thin wrapper so the public API does
    /// not leak the `rand` shim).
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic stream for `(test, case)`.
        pub fn for_case(test_seed: u64, case: u32) -> Self {
            TestRng(StdRng::seed_from_u64(
                test_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ))
        }

        pub(crate) fn below(&mut self, n: usize) -> usize {
            if n <= 1 {
                0
            } else {
                self.0.random_range(0..n)
            }
        }
    }

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `depth` levels of `recurse` applied over
        /// `self` as the leaf. `_desired_size` and `_expected_branch` are
        /// accepted for signature compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                leaf: self.boxed(),
                grow: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        leaf: BoxedStrategy<T>,
        grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                grow: Rc::clone(&self.grow),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Random depth per case so both shallow and deep shapes appear.
            let levels = rng.below(self.depth as usize + 1);
            let mut s = self.leaf.clone();
            for _ in 0..levels {
                s = (self.grow)(s);
            }
            s.generate(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len());
            self.arms[k].generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
    }
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a collection size: a fixed value or a range.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn pick(self, rng: &mut TestRng) -> usize {
                self.lo + rng.below(self.hi - self.lo + 1)
            }
        }

        /// Strategy for `Vec`s of `element` with a size in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s: `size` counts generation attempts;
        /// duplicates collapse.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`btree_set`].
        #[derive(Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __rejected: u32 = 0;
            for __case in 0..__config.cases {
                let mut __rng = $crate::strategy::TestRng::for_case(__seed, __case);
                $(let $arg = {
                    let __s = $strat;
                    $crate::strategy::Strategy::generate(&__s, &mut __rng)
                };)+
                // Snapshot the inputs before the body runs: the body may
                // move them, and on failure we still want to print them.
                let __inputs: ::std::string::String = [
                    $(::std::format!(
                        "\n    {} = {:?}", stringify!($arg), $arg
                    ),)+
                ].concat();
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        ::std::assert!(
                            __rejected <= __config.cases.saturating_mul(16).max(1024),
                            "too many prop_assume! rejections in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest case {} of {} failed: {}{}",
                            __case,
                            stringify!($name),
                            __msg,
                            __inputs,
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{} (left: {:?}, right: {:?})",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: {:?}",
            __l
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeding_is_stable() {
        assert_eq!(crate::seed_from_name("a"), crate::seed_from_name("a"));
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..5, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn flat_map_scales(pair in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u16..100) {
            prop_assert!(x < 100);
        }
    }
}
