//! Two-level logic minimisation end to end — the paper's motivating
//! application.
//!
//! A multi-output PLA with don't-cares is parsed, its prime implicants are
//! generated implicitly (BDD → ZDD Coudert–Madre recursion), the
//! Quine–McCluskey covering matrix is built, `ZDD_SCG` finds a minimum
//! cover, and the minimised PLA is verified against the specification.
//!
//! Run with: `cargo run --example two_level_minimization`

use ucp::logic::{build_covering, Pla};
use ucp::ucp_core::{Scg, SolveRequest};

const SOURCE: &str = "\
# A 4-input, 2-output function with don't-cares.
.i 4
.o 2
.p 8
1100 10
1111 10
10-0 1-
0111 01
01-0 01
0000 -1
1-01 01
--11 1-
.e
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pla: Pla = SOURCE.parse()?;
    println!(
        "input PLA: {} terms, {} inputs, {} outputs",
        pla.terms().len(),
        pla.num_inputs(),
        pla.num_outputs()
    );

    // Quine–McCluskey reformulation.
    let inst = build_covering(&pla)?;
    println!(
        "covering matrix: {} ON-minterm rows × {} prime columns",
        inst.matrix.num_rows(),
        inst.matrix.num_cols()
    );

    // Solve the unate covering problem.
    let outcome = Scg::run(SolveRequest::for_matrix(&inst.matrix)).unwrap();
    println!(
        "minimum cover: {} products (lower bound {}, certified: {})",
        outcome.cost, outcome.lower_bound, outcome.proven_optimal
    );

    // Back to a PLA and verify ON ⊆ result ⊆ ON ∪ DC for every output.
    let minimised = inst.solution_to_pla(&outcome.solution);
    assert!(
        inst.verify_against(&pla, &minimised),
        "minimised PLA must realise the specification"
    );
    println!("\nminimised PLA (verified equivalent under don't-cares):");
    print!("{minimised}");
    Ok(())
}
