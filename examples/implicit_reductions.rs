//! The point of the ZDD encoding: covering matrices whose *row count* is
//! huge can have a tiny *implicit* representation, and dominance reductions
//! run on the nodes, not the rows.
//!
//! This demo builds matrices with structured redundancy, compares explicit
//! row counts against ZDD node counts, and times the two reduction engines.
//!
//! Run with: `cargo run --release --example implicit_reductions`

use std::time::Instant;
use ucp::cover::{CoverMatrix, ImplicitMatrix, Reducer};

/// A matrix with combinatorial row structure: every row is a union of two
/// "blocks"; block pairs share structure, so the ZDD collapses them.
fn blocky(blocks: usize, block_size: usize) -> CoverMatrix {
    let cols = blocks * block_size;
    let block = |b: usize| -> Vec<usize> { (0..block_size).map(|i| b * block_size + i).collect() };
    let mut rows = Vec::new();
    for a in 0..blocks {
        for b in 0..blocks {
            if a == b {
                continue;
            }
            let mut r = block(a);
            r.extend(block(b));
            rows.push(r);
        }
    }
    CoverMatrix::from_rows(cols, rows)
}

fn main() {
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "blocks", "rows", "zdd nodes", "compression", "implicit(s)", "explicit(s)"
    );
    for blocks in [6usize, 10, 14, 18] {
        let m = blocky(blocks, 4);
        let im = ImplicitMatrix::encode(&m);
        let nodes = im.node_count();
        let rows = m.num_rows();

        let t = Instant::now();
        let mut im2 = ImplicitMatrix::encode(&m);
        im2.reduce();
        let implicit_time = t.elapsed();

        let t = Instant::now();
        let mut red = Reducer::new(&m);
        red.reduce_to_fixpoint();
        let explicit_time = t.elapsed();

        println!(
            "{:>8} {:>8} {:>10} {:>11.1}x {:>11.4}s {:>11.4}s",
            blocks,
            rows,
            nodes,
            rows as f64 * 8.0 / nodes as f64, // sets vs nodes, both ~entries
            implicit_time.as_secs_f64(),
            explicit_time.as_secs_f64(),
        );
        // Both engines agree on what remains.
        assert_eq!(im2.num_rows(), red.active_rows() as u128);
    }
    println!("\nThe ZDD grows with structural variety, not row count —");
    println!("the reason the paper's implicit phase survives 2^n-row matrices.");
}
