//! Quickstart: define a covering problem, solve it with `ZDD_SCG`, and read
//! the optimality certificate.
//!
//! Run with: `cargo run --example quickstart`

use ucp::cover::CoverMatrix;
use ucp::ucp_core::{Scg, SolveRequest};

fn main() {
    // A covering instance: rows are objects to cover, listed as the sets of
    // columns covering them. All columns cost 1 by default.
    let matrix = CoverMatrix::from_rows(
        7,
        vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![5, 6],
            vec![6, 0],
        ],
    );

    let outcome = Scg::run(SolveRequest::for_matrix(&matrix)).unwrap();

    println!(
        "instance: {} rows × {} cols",
        matrix.num_rows(),
        matrix.num_cols()
    );
    println!("cover found: columns {:?}", outcome.solution.cols());
    println!("cost: {}", outcome.cost);
    println!("lower bound: {}", outcome.lower_bound);
    println!(
        "certified optimal: {} (cost == lower bound)",
        outcome.proven_optimal
    );
    println!(
        "work: {} constructive runs, {} subgradient iterations, {:.3}s",
        outcome.iterations,
        outcome.subgradient_iterations,
        outcome.total_time.as_secs_f64()
    );

    assert!(outcome.solution.is_feasible(&matrix));
}
