//! Binate covering: the generalisation the paper's introduction frames the
//! unate problem within. Negative literals model *implications* — choosing
//! a gate forces its inputs — which plain unate covering cannot express.
//!
//! The toy below is a miniature technology-mapping decision: implement
//! functions F and G by choosing library cells; cell choices imply their
//! support cells.
//!
//! Run with: `cargo run --example binate_covering`

use ucp::binate::{solve, BinateMatrix, BinateOptions};

fn main() {
    // Variables (cells):          cost
    //   0: big cell implementing F  3
    //   1: small cell for F         1   …but it needs helper cell 3
    //   2: cell for G               2
    //   3: helper (buffer)          1
    //   4: alternative G via helper 1   …also needs helper cell 3
    let costs = vec![3.0, 1.0, 2.0, 1.0, 1.0];
    let m = BinateMatrix::with_costs(
        5,
        vec![
            // F must be implemented: big cell or small cell.
            (vec![0, 1], vec![]),
            // G must be implemented: direct cell or helper-based one.
            (vec![2, 4], vec![]),
            // Choosing the small F cell implies the helper: ¬1 ∨ 3.
            (vec![3], vec![1]),
            // Choosing the helper-based G implies the helper: ¬4 ∨ 3.
            (vec![3], vec![4]),
        ],
        costs,
    );

    println!("{m}");
    let r = solve(&m, &BinateOptions::default());
    let assignment = r.assignment.expect("mappable");
    let chosen: Vec<usize> = (0..5).filter(|&j| assignment[j]).collect();
    println!("optimal mapping: cells {chosen:?} at cost {}", r.cost);
    println!("nodes explored: {}", r.nodes);

    // The helper amortises: small-F (1) + helper (1) + helper-G (1) = 3,
    // beating big-F (3) + direct-G (2) = 5.
    assert_eq!(r.cost, 3.0);
    assert_eq!(chosen, vec![1, 3, 4]);
    assert!(m.is_satisfied(&assignment));
}
