//! The four lower bounds of Proposition 1, side by side (Figure 1 of the
//! paper), on the reconstructed example instance.
//!
//! Run with: `cargo run --example bounds_comparison`

use ucp::lp::DenseLp;
use ucp::solvers::{branch_and_bound, BnbOptions};
use ucp::ucp_core::bounds::bounds_report;
use ucp::workloads::suite;

fn main() {
    for (name, m) in [
        ("figure1 (costs 1,1,1,2,2)", suite::figure1()),
        ("figure1 (uniform costs)", suite::figure1_uniform()),
    ] {
        let b = bounds_report(&m);
        let lp = DenseLp::covering(m.num_cols(), m.rows(), m.costs())
            .solve()
            .expect("coverable");
        let exact = branch_and_bound(&m, &BnbOptions::default());
        println!("{name}:");
        println!("  LB_MIS  (independent set) = {}", b.mis);
        println!("  LB_DA   (dual ascent)     = {}", b.dual_ascent);
        println!("  LB_Lagr (subgradient)     = {:.3}", b.lagrangian);
        println!("  LB_LR   (LP relaxation)   = {}", lp.objective);
        println!("  ⌈LB_LR⌉                   = {}", lp.objective.ceil());
        println!("  z*      (integer optimum) = {}", exact.cost);
        println!();
        assert!(b.satisfies_proposition_1(), "Proposition 1 must hold");
        assert!(b.lagrangian <= lp.objective + 1e-6);
        assert!(lp.objective <= exact.cost + 1e-9);
    }
    println!("Proposition 1 chain verified: LB_MIS ≤ LB_DA ≤ LB_Lagr ≤ LB_LR ≤ z*");
}
