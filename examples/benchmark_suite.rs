//! Run every solver on one benchmark category and compare.
//!
//! Shows the trade-off the paper's tables quantify: greedy baselines are
//! fast but loose, `ZDD_SCG` nearly always certifies the optimum, exact
//! branch-and-bound confirms it when it can.
//!
//! Run with: `cargo run --release --example benchmark_suite [difficult|challenging|easy]`

use std::time::Duration;
use ucp::solvers::{branch_and_bound, chvatal_greedy, espresso_like, BnbOptions, EspressoMode};
use ucp::ucp_core::{Preset, Scg, SolveRequest};
use ucp::workloads::suite;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "difficult".into());
    let instances = match which.as_str() {
        "easy" => suite::easy_cyclic(),
        "challenging" => suite::challenging(),
        _ => suite::difficult_cyclic(),
    };

    println!(
        "{:>10}  {:>9}  {:>8}  {:>8}  {:>8}  {:>9}",
        "name", "scg", "greedy", "strong", "exact", "scg-time"
    );
    for inst in instances {
        let scg = Scg::run(SolveRequest::for_matrix(&inst.matrix).preset(Preset::Fast)).unwrap();
        let greedy = chvatal_greedy(&inst.matrix)
            .map(|s| s.cost(&inst.matrix))
            .unwrap_or(f64::NAN);
        let strong = espresso_like(&inst.matrix, EspressoMode::Strong)
            .map(|s| s.cost(&inst.matrix))
            .unwrap_or(f64::NAN);
        let exact = branch_and_bound(
            &inst.matrix,
            &BnbOptions {
                node_limit: 300_000,
                time_limit: Some(Duration::from_secs(3)),
                ..BnbOptions::default()
            },
        );
        let exact_str = if exact.optimal {
            format!("{}", exact.cost)
        } else {
            format!("{}H", exact.cost)
        };
        println!(
            "{:>10}  {:>8}{}  {:>8}  {:>8}  {:>8}  {:>8.2}s",
            inst.name,
            scg.cost,
            if scg.proven_optimal { "*" } else { " " },
            greedy,
            strong,
            exact_str,
            scg.total_time.as_secs_f64(),
        );
        assert!(scg.solution.is_feasible(&inst.matrix));
    }
    println!(
        "(* = certified optimal by ZDD_SCG's own Lagrangian bound; H = exact budget exhausted)"
    );
}
