//! Proposition 1 as a property: on random instances the bound chain
//! `LB_MIS ≤ LB_DA ≤ LB_Lagr ≤ LB_LR ≤ z*` holds, and under uniform costs
//! `LB_MIS = LB_DA`.

use proptest::prelude::*;
use ucp::cover::CoverMatrix;
use ucp::lp::DenseLp;
use ucp::solvers::{branch_and_bound, BnbOptions};
use ucp::ucp_core::bounds::{bounds_report, dual_ascent_bound, mis_bound};

fn instance_strategy(uniform: bool) -> impl Strategy<Value = CoverMatrix> {
    (3usize..=9).prop_flat_map(move |cols| {
        let row = prop::collection::btree_set(0..cols, 1..=cols.min(4));
        let rows = prop::collection::vec(row, 2..=10);
        let costs = prop::collection::vec(if uniform { 1u8..=1 } else { 1u8..=5 }, cols);
        (rows, costs).prop_map(move |(rows, costs)| {
            CoverMatrix::with_costs(
                cols,
                rows.into_iter().map(|r| r.into_iter().collect()).collect(),
                costs.into_iter().map(f64::from).collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn proposition_1_chain(m in instance_strategy(false)) {
        let report = bounds_report(&m);
        prop_assert!(report.satisfies_proposition_1(), "{report:?}");

        let lp = DenseLp::covering(m.num_cols(), m.rows(), m.costs())
            .solve()
            .expect("coverable instances");
        prop_assert!(
            report.lagrangian <= lp.objective + 1e-5,
            "Lagrangian {} exceeds LP {}",
            report.lagrangian,
            lp.objective
        );

        let exact = branch_and_bound(&m, &BnbOptions::default());
        prop_assert!(exact.optimal);
        prop_assert!(lp.objective <= exact.cost + 1e-6,
            "LP {} exceeds optimum {}", lp.objective, exact.cost);
    }

    #[test]
    fn uniform_costs_collapse_mis_and_dual_ascent(m in instance_strategy(true)) {
        // Proposition 1's final claim: with c = e the two bounds coincide…
        // for *optimal* dual solutions. Heuristic dual ascent and greedy MIS
        // may differ in either direction by heuristic slack, but dual ascent
        // must never fall below the bound of the independent set implied by
        // its own integer rounding; we check the certified relation
        // LB_DA ≥ LB_MIS (dominance) and integrality of LB_DA.
        let da = dual_ascent_bound(&m);
        let mis = mis_bound(&m);
        prop_assert!(da >= mis - 1e-9, "dual ascent {da} below MIS {mis}");
        prop_assert!((da - da.round()).abs() < 1e-9,
            "uniform-cost dual ascent should be integral, got {da}");
    }
}
