//! Cross-solver agreement on random instances: feasibility, bound sanity,
//! certificate soundness, and the paper's headline quality claim.

use proptest::prelude::*;
use ucp::cover::CoverMatrix;
use ucp::solvers::{branch_and_bound, chvatal_greedy, espresso_like, BnbOptions, EspressoMode};
use ucp::ucp_core::{Scg, SolveRequest};

fn instance_strategy() -> impl Strategy<Value = CoverMatrix> {
    (3usize..=12).prop_flat_map(|cols| {
        let row = prop::collection::btree_set(0..cols, 1..=cols.min(4));
        let rows = prop::collection::vec(row, 2..=14);
        let costs = prop::collection::vec(1u8..=3, cols);
        (rows, costs).prop_map(move |(rows, costs)| {
            CoverMatrix::with_costs(
                cols,
                rows.into_iter().map(|r| r.into_iter().collect()).collect(),
                costs.into_iter().map(f64::from).collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scg_is_sound_and_sharp(m in instance_strategy()) {
        let exact = branch_and_bound(&m, &BnbOptions::default());
        prop_assert!(exact.optimal);
        let opt = exact.cost;

        let scg = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
        prop_assert!(scg.solution.is_feasible(&m));
        prop_assert!((scg.solution.cost(&m) - scg.cost).abs() < 1e-9);
        prop_assert!(scg.cost >= opt - 1e-9, "heuristic below optimum");
        prop_assert!(scg.lower_bound <= opt + 1e-9,
            "invalid lower bound {} > optimum {}", scg.lower_bound, opt);
        if scg.proven_optimal {
            prop_assert!((scg.cost - opt).abs() < 1e-9, "bogus certificate");
        }

        // Irredundancy: removing any chosen column breaks feasibility.
        for &j in scg.solution.cols() {
            let mut reduced = scg.solution.clone();
            reduced.remove(j);
            prop_assert!(!reduced.is_feasible(&m),
                "column {j} is redundant in the returned cover");
        }
    }

    #[test]
    fn scg_not_worse_than_greedy_baselines(m in instance_strategy()) {
        let scg = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
        let greedy = chvatal_greedy(&m).unwrap().cost(&m);
        let strong = espresso_like(&m, EspressoMode::Strong).unwrap().cost(&m);
        // On these small instances the Lagrangian heuristic should never
        // lose to single-pass greedy (it subsumes it as one of its rules).
        prop_assert!(scg.cost <= greedy + 1e-9,
            "SCG {} worse than greedy {}", scg.cost, greedy);
        prop_assert!(scg.cost <= strong + 1.0 + 1e-9,
            "SCG {} much worse than strong {}", scg.cost, strong);
    }
}

#[test]
fn scg_hits_optimum_on_most_fixed_seeds() {
    // The paper: "the algorithm nearly always hits the optimum". Quantify on
    // 40 seeded instances: ≥ 90% exact hits, never off by more than 1.
    use ucp::workloads::{random_ucp, RandomUcpConfig};
    let mut hits = 0usize;
    let total = 40usize;
    for seed in 0..total as u64 {
        let m = random_ucp(
            &RandomUcpConfig {
                rows: 40,
                cols: 55,
                min_row_degree: 2,
                max_row_degree: 5,
                ..RandomUcpConfig::default()
            },
            seed,
        );
        let exact = branch_and_bound(&m, &BnbOptions::default());
        assert!(exact.optimal, "seed {seed}");
        let scg = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
        assert!(
            scg.cost <= exact.cost + 1.0 + 1e-9,
            "seed {seed}: SCG {} vs optimum {}",
            scg.cost,
            exact.cost
        );
        if (scg.cost - exact.cost).abs() < 1e-9 {
            hits += 1;
        }
    }
    assert!(
        hits * 10 >= total * 9,
        "only {hits}/{total} optima hit — below the paper's 'nearly always'"
    );
}

#[test]
fn steiner_nine_closed_and_matched() {
    // STS(9): small enough for the exact solver to close; the heuristic
    // should land on the same covering number.
    use ucp::solvers::{branch_and_bound, BnbOptions};
    use ucp::workloads::steiner_triple;
    let m = steiner_triple(9);
    let exact = branch_and_bound(&m, &BnbOptions::default());
    assert!(exact.optimal);
    let scg = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
    assert!(scg.solution.is_feasible(&m));
    assert!(scg.cost <= exact.cost + 1.0);
    assert!(scg.lower_bound <= exact.cost + 1e-9);
}

#[test]
fn zero_cost_columns_are_free() {
    // A zero-cost column covering everything: the optimum is 0 and every
    // solver must find it (and the certificate must hold: LB = 0 = cost).
    let m = CoverMatrix::with_costs(3, vec![vec![0, 2], vec![1, 2]], vec![4.0, 4.0, 0.0]);
    let scg = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
    assert_eq!(scg.cost, 0.0);
    assert!(scg.proven_optimal);
    let exact = branch_and_bound(&m, &BnbOptions::default());
    assert!(exact.optimal);
    assert_eq!(exact.cost, 0.0);
}

#[test]
fn single_row_single_column() {
    let m = CoverMatrix::from_rows(1, vec![vec![0]]);
    let scg = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
    assert_eq!(scg.cost, 1.0);
    assert!(scg.proven_optimal);
    assert_eq!(scg.solution.cols(), &[0]);
}

#[test]
fn interval_instances_always_certify() {
    // Interval matrices are totally unimodular: the LP bound is integral,
    // so the Lagrangian certificate must close on every instance.
    use ucp::workloads::interval_ucp;
    for seed in 0..12u64 {
        let m = interval_ucp(30, 12, seed);
        let out = Scg::run(SolveRequest::for_matrix(&m)).unwrap();
        assert!(out.solution.is_feasible(&m), "seed {seed}");
        assert!(
            out.proven_optimal,
            "seed {seed}: TU instance not certified (cost {}, LB {})",
            out.cost, out.lower_bound
        );
        assert!((out.gap() - 0.0).abs() < 1e-12, "seed {seed}");
    }
}
