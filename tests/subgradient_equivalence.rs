//! Equivalence suite for the sparse CSR/CSC subgradient rework: the live
//! inner loop (`subgradient_ascent`, incremental reduced costs, reusable
//! scratch buffers) must reproduce the preserved dense reference
//! implementations (`ucp_core::reference`) **bit for bit** — every float
//! equal down to its representation, every cover identical, every
//! iteration count the same.
//!
//! The constraint-kind-parameterised rework extends the contract: the
//! constrained entry point (`subgradient_ascent_constrained`) with the
//! trivial constraint set (`b_i ≡ 1`, no GUB groups) must be
//! bit-identical to the unate path too — the generalisation may not
//! perturb a single float of the historical behaviour.

use proptest::prelude::*;
use ucp::cover::CoverMatrix;
use ucp::ucp_core::reference::{
    eval_dual_lagrangian_dense, eval_primal_dense, subgradient_ascent_dense,
};
use ucp::ucp_core::relax::eval_primal;
use ucp::ucp_core::{subgradient_ascent, subgradient_ascent_constrained, SubgradientOptions};
use ucp::ucp_core::{Constraints, GubGroup};
use ucp::workloads::suite;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs both paths and asserts the full results are bit-identical.
fn assert_equiv(
    name: &str,
    m: &CoverMatrix,
    opts: &SubgradientOptions,
    lambda0: Option<&[f64]>,
    ub_hint: Option<f64>,
) {
    let live = subgradient_ascent(m, opts, lambda0, ub_hint);
    let dense = subgradient_ascent_dense(m, opts, lambda0, ub_hint);
    assert_eq!(live.iterations, dense.iterations, "{name}: iterations");
    assert_eq!(live.lb.to_bits(), dense.lb.to_bits(), "{name}: lb");
    assert_eq!(live.ub_ld.to_bits(), dense.ub_ld.to_bits(), "{name}: ub_ld");
    assert_eq!(
        live.best_cost.to_bits(),
        dense.best_cost.to_bits(),
        "{name}: best_cost"
    );
    assert_eq!(live.proven_optimal, dense.proven_optimal, "{name}: flag");
    assert_eq!(bits(&live.lambda), bits(&dense.lambda), "{name}: lambda");
    assert_eq!(bits(&live.mu), bits(&dense.mu), "{name}: mu");
    assert_eq!(bits(&live.c_tilde), bits(&dense.c_tilde), "{name}: c_tilde");
    assert_eq!(
        live.best_solution.as_ref().map(|s| s.cols().to_vec()),
        dense.best_solution.as_ref().map(|s| s.cols().to_vec()),
        "{name}: cover"
    );
    assert_eq!(live.history, dense.history, "{name}: history");
}

/// Runs the unate path and the constrained path with unit demand (the
/// `b_i ≡ 1`, no-groups specialization) and asserts bit-identity.
fn assert_unate_specialization(
    name: &str,
    m: &CoverMatrix,
    opts: &SubgradientOptions,
    lambda0: Option<&[f64]>,
    ub_hint: Option<f64>,
) {
    let unate = subgradient_ascent(m, opts, lambda0, ub_hint);
    let cons = Constraints::new().coverage(vec![1; m.num_rows()]);
    let multi = subgradient_ascent_constrained(m, opts, &cons, lambda0, ub_hint);
    assert_eq!(multi.iterations, unate.iterations, "{name}: iterations");
    assert_eq!(multi.lb.to_bits(), unate.lb.to_bits(), "{name}: lb");
    assert_eq!(
        multi.ub_ld.to_bits(),
        unate.ub_ld.to_bits(),
        "{name}: ub_ld"
    );
    assert_eq!(
        multi.best_cost.to_bits(),
        unate.best_cost.to_bits(),
        "{name}: best_cost"
    );
    assert_eq!(multi.proven_optimal, unate.proven_optimal, "{name}: flag");
    assert_eq!(bits(&multi.lambda), bits(&unate.lambda), "{name}: lambda");
    assert_eq!(bits(&multi.mu), bits(&unate.mu), "{name}: mu");
    assert_eq!(
        bits(&multi.c_tilde),
        bits(&unate.c_tilde),
        "{name}: c_tilde"
    );
    assert_eq!(
        multi.best_solution.as_ref().map(|s| s.cols().to_vec()),
        unate.best_solution.as_ref().map(|s| s.cols().to_vec()),
        "{name}: cover"
    );
    assert_eq!(multi.history, unate.history, "{name}: history");
}

fn cycle(n: usize) -> CoverMatrix {
    CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
}

#[test]
fn cycles_match_dense_bit_for_bit() {
    let opts = SubgradientOptions {
        record_history: true,
        ..SubgradientOptions::default()
    };
    for n in [5usize, 7, 9, 11, 15] {
        assert_equiv(&format!("C{n}"), &cycle(n), &opts, None, None);
    }
}

#[test]
fn suite_instances_match_dense_bit_for_bit() {
    let opts = SubgradientOptions::default();
    for inst in suite::easy_cyclic() {
        assert_equiv(&inst.name, &inst.matrix, &opts, None, None);
    }
    // A few of the difficult cores too (the dense oracle is the slow
    // side; the full set runs in the snapshot bench instead).
    for inst in suite::difficult_cyclic().into_iter().take(3) {
        assert_equiv(&inst.name, &inst.matrix, &opts, None, None);
    }
}

#[test]
fn occurrence_rule_and_options_match_dense() {
    let m = cycle(9);
    assert_equiv(
        "occurrence",
        &m,
        &SubgradientOptions {
            occurrence_heuristic: true,
            ..SubgradientOptions::default()
        },
        None,
        None,
    );
    assert_equiv(
        "period-3",
        &m,
        &SubgradientOptions {
            heuristic_period: 3,
            ..SubgradientOptions::default()
        },
        None,
        None,
    );
    assert_equiv(
        "period-0",
        &m,
        &SubgradientOptions {
            heuristic_period: 0,
            ..SubgradientOptions::default()
        },
        None,
        None,
    );
    assert_equiv(
        "capped",
        &m,
        &SubgradientOptions {
            max_iters: 7,
            ..SubgradientOptions::default()
        },
        None,
        None,
    );
}

#[test]
fn warm_start_and_ub_hint_match_dense() {
    let m = cycle(11);
    let lambda0: Vec<f64> = (0..11).map(|i| 0.25 + 0.1 * (i % 3) as f64).collect();
    let opts = SubgradientOptions {
        record_history: true,
        ..SubgradientOptions::default()
    };
    assert_equiv("warm", &m, &opts, Some(&lambda0), None);
    assert_equiv("hint", &m, &opts, None, Some(6.0));
    assert_equiv("warm+hint", &m, &opts, Some(&lambda0), Some(6.0));
}

#[test]
fn one_shot_evaluations_match_dense() {
    let m = CoverMatrix::with_costs(
        5,
        vec![vec![0, 1, 4], vec![2], vec![1, 3], vec![], vec![0, 2, 3]],
        vec![1.0, 3.0, 2.0, 5.0, 1.0],
    );
    let lambda = [0.5, 0.0, 1.25, 0.75, 2.0];
    let live = eval_primal(&m, &lambda);
    let dense = eval_primal_dense(&m, &lambda);
    assert_eq!(live.value.to_bits(), dense.value.to_bits());
    assert_eq!(bits(&live.c_tilde), bits(&dense.c_tilde));
    assert_eq!(live.p, dense.p);
    assert_eq!(bits(&live.subgradient), bits(&dense.subgradient));
    assert_eq!(live.subgradient_norm2, dense.subgradient_norm2);
    assert_eq!(live.violated, dense.violated);

    let mu = [0.0, 0.4, 1.0, 0.9, 0.1];
    let live_d = ucp::ucp_core::dual::eval_dual_lagrangian(&m, m.costs(), &mu);
    let dense_d = eval_dual_lagrangian_dense(&m, m.costs(), &mu);
    assert_eq!(live_d.value.to_bits(), dense_d.value.to_bits());
    assert_eq!(bits(&live_d.m), bits(&dense_d.m));
    assert_eq!(bits(&live_d.gradient), bits(&dense_d.gradient));
    assert_eq!(live_d.gradient_norm2, dense_d.gradient_norm2);
}

#[test]
fn unit_demand_constrained_path_matches_unate_bit_for_bit() {
    let opts = SubgradientOptions {
        record_history: true,
        ..SubgradientOptions::default()
    };
    for n in [5usize, 7, 9, 11, 15] {
        assert_unate_specialization(&format!("C{n}"), &cycle(n), &opts, None, None);
    }
    let lambda0: Vec<f64> = (0..11).map(|i| 0.25 + 0.1 * (i % 3) as f64).collect();
    assert_unate_specialization("warm", &cycle(11), &opts, Some(&lambda0), Some(6.0));
    for inst in suite::easy_cyclic().into_iter().take(20) {
        assert_unate_specialization(
            &inst.name,
            &inst.matrix,
            &SubgradientOptions::default(),
            None,
            None,
        );
    }
}

#[test]
fn multicover_relaxation_stays_a_valid_bound() {
    // With real multicover demands the constrained ascent is a different
    // problem; its LB must still never exceed the optimum. On C(n,2)
    // with b ≡ 2 the unique cover is all n columns.
    for n in [5usize, 9, 13] {
        let m = cycle(n);
        let cons = Constraints::new().coverage(vec![2; n]);
        let r =
            subgradient_ascent_constrained(&m, &SubgradientOptions::default(), &cons, None, None);
        assert!(
            r.lb <= n as f64 + 1e-9,
            "C{n}: LB {} above optimum {n}",
            r.lb
        );
        let sol = r.best_solution.expect("the full column set is feasible");
        assert!(cons.is_satisfied(&m, &sol), "C{n}: cover violates demand");
        assert_eq!(
            r.best_cost, n as f64,
            "C{n}: only the full set covers twice"
        );
    }
    // GUB groups are ignored by the relaxation but enforced in the
    // greedy: the returned cover must honour them.
    let m = cycle(9);
    let cons = Constraints::new().gub_groups(vec![GubGroup::new(vec![0, 1, 2], 1)]);
    let r = subgradient_ascent_constrained(&m, &SubgradientOptions::default(), &cons, None, None);
    if let Some(sol) = &r.best_solution {
        assert!(cons.is_satisfied(&m, sol), "cover violates the GUB bound");
    }
}

/// Random instances with empty rows (uncoverable), empty columns,
/// single-column rows and non-uniform costs.
fn instance_strategy() -> impl Strategy<Value = CoverMatrix> {
    (3usize..=9).prop_flat_map(move |cols| {
        let row = prop::collection::btree_set(0..cols, 0..=cols.min(4));
        let rows = prop::collection::vec(row, 1..=10);
        let costs = prop::collection::vec(1u8..=5, cols);
        (rows, costs).prop_map(move |(rows, costs)| {
            CoverMatrix::with_costs(
                cols,
                rows.into_iter().map(|r| r.into_iter().collect()).collect(),
                costs.into_iter().map(f64::from).collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_instances_match_dense(m in instance_strategy()) {
        let opts = SubgradientOptions {
            max_iters: 60,
            record_history: true,
            ..SubgradientOptions::default()
        };
        assert_equiv("random", &m, &opts, None, None);
    }

    #[test]
    fn random_warm_starts_match_dense(
        m in instance_strategy(),
        seeds in prop::collection::vec(0u8..=8, 10),
    ) {
        let lambda0: Vec<f64> = (0..m.num_rows())
            .map(|i| f64::from(seeds[i % seeds.len()]) / 4.0)
            .collect();
        let opts = SubgradientOptions {
            max_iters: 40,
            ..SubgradientOptions::default()
        };
        assert_equiv("random-warm", &m, &opts, Some(&lambda0), None);
    }

    #[test]
    fn random_unit_demand_constrained_matches_unate(m in instance_strategy()) {
        // The constrained entry refuses structurally infeasible demand
        // (an empty row cannot supply b_i = 1), so restrict to coverable
        // instances; the unate-side handling of uncoverable rows is
        // already pinned by the dense-equivalence cases above.
        prop_assume!((0..m.num_rows()).all(|i| !m.row(i).is_empty()));
        let opts = SubgradientOptions {
            max_iters: 60,
            record_history: true,
            ..SubgradientOptions::default()
        };
        assert_unate_specialization("random-unit-demand", &m, &opts, None, None);
    }
}
