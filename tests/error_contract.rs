//! Error-type contract: every public error enum in the workspace is a
//! real `std::error::Error` — nonempty `Display`, a `source()` chain
//! where a cause exists — so callers can box them, wrap them with
//! `anyhow`-style adapters, and walk the chain uniformly.

use std::error::Error;

use ucp::cover::{ConstraintError, ParseMatrixError};
use ucp::logic::{BuildCoveringError, ParsePlaError};
use ucp::lp::SolveLpError;
use ucp::ucp_core::wire::WireCode;
use ucp::ucp_core::{SolveError, WireError, ZddOverflow};
use ucp::ucp_engine::{JobError, SubmitError};

/// Walks a value through `&dyn Error`: Display must render nonempty,
/// and the source chain must terminate.
fn check(err: &dyn Error) {
    assert!(!err.to_string().is_empty(), "empty Display: {err:?}");
    let mut depth = 0usize;
    let mut cur = err.source();
    while let Some(e) = cur {
        assert!(!e.to_string().is_empty(), "empty Display in chain: {e:?}");
        depth += 1;
        assert!(depth < 8, "unterminated source chain");
        cur = e.source();
    }
}

fn overflow() -> ZddOverflow {
    ZddOverflow {
        budget: 16,
        live: 17,
    }
}

fn bad_constraints() -> ConstraintError {
    ConstraintError::RowInfeasible {
        row: 2,
        demand: 3,
        max_supply: 1,
    }
}

#[test]
fn every_public_error_enum_implements_error_uniformly() {
    let errs: Vec<Box<dyn Error>> = vec![
        Box::new(ParseMatrixError::BadHeader("p ucp".into())),
        Box::new(ParseMatrixError::BadLine {
            line: 3,
            reason: "negative cost".into(),
        }),
        Box::new(ParseMatrixError::Inconsistent(
            "2 rows, header said 3".into(),
        )),
        Box::new(ParsePlaError::MissingHeader),
        Box::new(ParsePlaError::BadDirective(".i x".into())),
        Box::new(ParsePlaError::BadCube {
            line: 7,
            reason: "wrong width".into(),
        }),
        Box::new(ParsePlaError::TooLarge),
        Box::new(BuildCoveringError::TooManyInputs(99)),
        Box::new(SolveLpError::Infeasible),
        Box::new(SolveLpError::Unbounded),
        Box::new(SolveLpError::IterationLimit),
        Box::new(JobError::Cancelled),
        Box::new(JobError::Expired),
        Box::new(JobError::Panicked("boom".into())),
        Box::new(JobError::ResourceExhausted(overflow())),
        Box::new(JobError::InvalidConstraints(bad_constraints())),
        Box::new(JobError::EngineClosed),
        Box::new(JobError::Shutdown),
        Box::new(WireError::new(WireCode::QueueFull, "queue is full")),
        Box::new(SubmitError::QueueFull),
        Box::new(SubmitError::Closed),
        Box::new(SolveError::Cancelled),
        Box::new(SolveError::Expired),
        Box::new(SolveError::ResourceExhausted(overflow())),
        Box::new(SolveError::InvalidConstraints(bad_constraints())),
        Box::new(bad_constraints()),
        Box::new(overflow()),
    ];
    for err in &errs {
        check(err.as_ref());
    }
}

#[test]
fn resource_exhaustion_chains_to_the_overflow_cause() {
    for err in [
        &JobError::ResourceExhausted(overflow()) as &dyn Error,
        &SolveError::ResourceExhausted(overflow()) as &dyn Error,
    ] {
        let src = err.source().expect("exhaustion carries its cause");
        assert_eq!(src.to_string(), overflow().to_string());
        assert!(src.source().is_none(), "ZddOverflow is the chain root");
    }
}

#[test]
fn overflow_converts_into_solve_error() {
    let e: SolveError = overflow().into();
    assert_eq!(e, SolveError::ResourceExhausted(overflow()));
}

#[test]
fn constraint_errors_chain_through_both_job_layers() {
    for err in [
        &SolveError::InvalidConstraints(bad_constraints()) as &dyn Error,
        &JobError::InvalidConstraints(bad_constraints()) as &dyn Error,
    ] {
        let src = err.source().expect("carries the constraint cause");
        assert_eq!(src.to_string(), bad_constraints().to_string());
        assert!(src.source().is_none(), "ConstraintError is the chain root");
    }
    let e: SolveError = bad_constraints().into();
    assert_eq!(e, SolveError::InvalidConstraints(bad_constraints()));
}

/// The wire-code taxonomy is the single error surface of the HTTP API:
/// every engine-facing error variant maps into it, the (code, status)
/// table has no duplicates, and every code the server can emit is
/// documented in the README's taxonomy table.
#[test]
fn every_error_variant_maps_to_a_documented_wire_code() {
    // Exhaustive variant → code walk (compile-breaks when a variant is
    // added without extending `wire_code()`).
    let job_errors = [
        (JobError::Cancelled, WireCode::Cancelled),
        (JobError::Expired, WireCode::Expired),
        (JobError::Panicked("boom".into()), WireCode::Panicked),
        (
            JobError::ResourceExhausted(overflow()),
            WireCode::ResourceExhausted,
        ),
        (
            JobError::InvalidConstraints(bad_constraints()),
            WireCode::UnsupportedConstraints,
        ),
        (JobError::EngineClosed, WireCode::EngineClosed),
        (JobError::Shutdown, WireCode::Shutdown),
    ];
    for (err, code) in &job_errors {
        assert_eq!(err.wire_code(), *code, "{err}");
    }
    let submit_errors = [
        (SubmitError::QueueFull, WireCode::QueueFull),
        (SubmitError::Closed, WireCode::EngineClosed),
    ];
    for (err, code) in &submit_errors {
        assert_eq!(err.wire_code(), *code, "{err}");
    }
    let solve_errors = [
        (SolveError::Cancelled, WireCode::Cancelled),
        (SolveError::Expired, WireCode::Expired),
        (
            SolveError::ResourceExhausted(overflow()),
            WireCode::ResourceExhausted,
        ),
        (
            SolveError::InvalidConstraints(bad_constraints()),
            WireCode::UnsupportedConstraints,
        ),
    ];
    for (err, code) in &solve_errors {
        assert_eq!(err.wire_code(), *code, "{err}");
    }

    // One row per code: strings and the code itself are unique, the
    // HTTP status is in a sane range, and round-tripping holds.
    let mut seen = Vec::new();
    for code in WireCode::ALL {
        assert!(!seen.contains(&code.as_str()), "duplicate {code}");
        seen.push(code.as_str());
        assert!((400..=599).contains(&code.http_status()), "{code}");
        assert_eq!(WireCode::parse(code.as_str()), Some(code));
    }

    // Documentation is part of the contract: the README taxonomy table
    // must list every code string with its status.
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md is checked in");
    for code in WireCode::ALL {
        let cell = format!("`{}`", code.as_str());
        assert!(
            readme.contains(&cell),
            "README does not document wire code {}",
            code.as_str()
        );
        assert!(
            readme.contains(&code.http_status().to_string()),
            "README does not mention status {} for {}",
            code.http_status(),
            code.as_str()
        );
    }
}
