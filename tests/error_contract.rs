//! Error-type contract: every public error enum in the workspace is a
//! real `std::error::Error` — nonempty `Display`, a `source()` chain
//! where a cause exists — so callers can box them, wrap them with
//! `anyhow`-style adapters, and walk the chain uniformly.

use std::error::Error;

use ucp::cover::ParseMatrixError;
use ucp::logic::{BuildCoveringError, ParsePlaError};
use ucp::lp::SolveLpError;
use ucp::ucp_core::{SolveError, ZddOverflow};
use ucp::ucp_engine::{JobError, SubmitError};

/// Walks a value through `&dyn Error`: Display must render nonempty,
/// and the source chain must terminate.
fn check(err: &dyn Error) {
    assert!(!err.to_string().is_empty(), "empty Display: {err:?}");
    let mut depth = 0usize;
    let mut cur = err.source();
    while let Some(e) = cur {
        assert!(!e.to_string().is_empty(), "empty Display in chain: {e:?}");
        depth += 1;
        assert!(depth < 8, "unterminated source chain");
        cur = e.source();
    }
}

fn overflow() -> ZddOverflow {
    ZddOverflow {
        budget: 16,
        live: 17,
    }
}

#[test]
fn every_public_error_enum_implements_error_uniformly() {
    let errs: Vec<Box<dyn Error>> = vec![
        Box::new(ParseMatrixError::BadHeader("p ucp".into())),
        Box::new(ParseMatrixError::BadLine {
            line: 3,
            reason: "negative cost".into(),
        }),
        Box::new(ParseMatrixError::Inconsistent(
            "2 rows, header said 3".into(),
        )),
        Box::new(ParsePlaError::MissingHeader),
        Box::new(ParsePlaError::BadDirective(".i x".into())),
        Box::new(ParsePlaError::BadCube {
            line: 7,
            reason: "wrong width".into(),
        }),
        Box::new(ParsePlaError::TooLarge),
        Box::new(BuildCoveringError::TooManyInputs(99)),
        Box::new(SolveLpError::Infeasible),
        Box::new(SolveLpError::Unbounded),
        Box::new(SolveLpError::IterationLimit),
        Box::new(JobError::Cancelled),
        Box::new(JobError::Expired),
        Box::new(JobError::Panicked("boom".into())),
        Box::new(JobError::ResourceExhausted(overflow())),
        Box::new(JobError::EngineClosed),
        Box::new(SubmitError::QueueFull),
        Box::new(SubmitError::Closed),
        Box::new(SolveError::Cancelled),
        Box::new(SolveError::Expired),
        Box::new(SolveError::ResourceExhausted(overflow())),
        Box::new(overflow()),
    ];
    for err in &errs {
        check(err.as_ref());
    }
}

#[test]
fn resource_exhaustion_chains_to_the_overflow_cause() {
    for err in [
        &JobError::ResourceExhausted(overflow()) as &dyn Error,
        &SolveError::ResourceExhausted(overflow()) as &dyn Error,
    ] {
        let src = err.source().expect("exhaustion carries its cause");
        assert_eq!(src.to_string(), overflow().to_string());
        assert!(src.source().is_none(), "ZddOverflow is the chain root");
    }
}

#[test]
fn overflow_converts_into_solve_error() {
    let e: SolveError = overflow().into();
    assert_eq!(e, SolveError::ResourceExhausted(overflow()));
}
