//! Smoke tests over the full named benchmark suite: every instance must
//! be solved feasibly with a consistent bound.
//!
//! Tier-1 keeps these fast: the challenging sweep runs only the
//! instances up to [`CHALLENGING_QUICK_MAX_ROWS`] rows by default. The
//! full-size sweep stays available behind the standard escape hatch:
//! `cargo test --test suite_smoke -- --ignored` (or `--include-ignored`
//! to run both tiers).

use ucp::solvers::{branch_and_bound, BnbOptions};
use ucp::ucp_core::{Preset, Scg, SolveRequest};
use ucp::workloads::suite;

#[test]
fn easy_cyclic_all_certified_with_default_options() {
    // The paper's experiment 1: all 49 easy-cyclic instances solved to
    // proven optimality. The heuristic's own bound certifies all but a
    // handful of generated instances with a unit duality gap (with the
    // vendored rand stand-in, rnd01/07/08/09/15 land on lb = cost − 1
    // exactly); for those, branch and bound confirms the heuristic's
    // cover is in fact optimal.
    let mut gap_confirmed = 0usize;
    for inst in suite::easy_cyclic() {
        let out = Scg::run(SolveRequest::for_matrix(&inst.matrix)).unwrap();
        assert!(out.solution.is_feasible(&inst.matrix), "{}", inst.name);
        assert!(out.cost >= out.lower_bound - 1e-9, "{}", inst.name);
        if !out.proven_optimal {
            let exact = branch_and_bound(&inst.matrix, &BnbOptions::default());
            assert!(exact.optimal, "{}: exact solver did not close", inst.name);
            assert!(
                (out.cost - exact.cost).abs() < 1e-9,
                "{}: heuristic cost {} is not the optimum {}",
                inst.name,
                out.cost,
                exact.cost
            );
            gap_confirmed += 1;
        }
    }
    assert!(
        gap_confirmed <= 5,
        "{gap_confirmed} easy instances needed the exact fallback (expected ≤ 5)"
    );
}

#[test]
fn difficult_cyclic_feasible_and_bounded() {
    for inst in suite::difficult_cyclic() {
        let out = Scg::run(SolveRequest::for_matrix(&inst.matrix).preset(Preset::Fast)).unwrap();
        assert!(out.solution.is_feasible(&inst.matrix), "{}", inst.name);
        assert!(out.lower_bound <= out.cost + 1e-9, "{}", inst.name);
        assert!(out.lower_bound > 0.0, "{} has trivial bound", inst.name);
    }
}

/// Row-count cutoff for the tier-1 slice of the challenging sweep. The
/// five instances above it (ex1010, pdc, soar.pla, test2, test3) account
/// for nearly all of the full sweep's ~100 s debug runtime;
/// [`challenging_feasible_and_bounded_full`] still covers them.
const CHALLENGING_QUICK_MAX_ROWS: usize = 300;

fn check_challenging(max_rows: Option<usize>) {
    let mut covered = 0usize;
    for inst in suite::challenging()
        .into_iter()
        .filter(|i| max_rows.is_none_or(|cap| i.matrix.num_rows() <= cap))
    {
        let out = Scg::run(SolveRequest::for_matrix(&inst.matrix).preset(Preset::Fast)).unwrap();
        assert!(out.solution.is_feasible(&inst.matrix), "{}", inst.name);
        assert!(out.lower_bound <= out.cost + 1e-9, "{}", inst.name);
        covered += 1;
    }
    assert!(
        covered >= 8,
        "only {covered} challenging instances in scope"
    );
}

#[test]
fn challenging_feasible_and_bounded() {
    check_challenging(Some(CHALLENGING_QUICK_MAX_ROWS));
}

#[test]
#[ignore = "full-size challenging sweep (~2 min in debug); run with \
`cargo test --test suite_smoke -- --ignored`"]
fn challenging_feasible_and_bounded_full() {
    check_challenging(None);
}

#[test]
fn steiner_instances_have_known_structure() {
    // STS(n) covers: the minimum cover of a Steiner triple system on n
    // points is well studied; sanity bounds: at least (n-1)/2 points are
    // needed (each point covers (n-1)/2 triples of the n(n-1)/6).
    for inst in suite::difficult_cyclic()
        .into_iter()
        .filter(|i| i.description.contains("Steiner"))
    {
        let n = inst.matrix.num_cols() as f64;
        let triples = inst.matrix.num_rows() as f64;
        let per_point = (n - 1.0) / 2.0;
        let counting_lb = (triples / per_point).ceil();
        let out = Scg::run(SolveRequest::for_matrix(&inst.matrix).preset(Preset::Fast)).unwrap();
        assert!(
            out.cost >= counting_lb - 1e-9,
            "{}: cover {} below counting bound {}",
            inst.name,
            out.cost,
            counting_lb
        );
    }
}
