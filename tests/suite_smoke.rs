//! Smoke tests over the full named benchmark suite with the fast preset:
//! every instance must be solved feasibly with a consistent bound.

use ucp::ucp_core::{Scg, ScgOptions};
use ucp::workloads::suite;

#[test]
#[ignore = "suite generation is PRNG-stream dependent: with the vendored \
rand stand-in, 5 of the 49 generated instances (rnd01/07/08/09/15) have a \
unit duality gap — branch-and-bound confirms the heuristic's cover is \
optimal, but lb = cost - 1 exactly, so bound-matching cannot certify them"]
fn easy_cyclic_all_certified_with_default_options() {
    // The paper's experiment 1: all 49 easy-cyclic instances solved to
    // proven optimality by the heuristic alone.
    let mut certified = 0usize;
    let instances = suite::easy_cyclic();
    for inst in &instances {
        let out = Scg::new(ScgOptions::default()).solve(&inst.matrix);
        assert!(out.solution.is_feasible(&inst.matrix), "{}", inst.name);
        assert!(out.cost >= out.lower_bound - 1e-9, "{}", inst.name);
        certified += usize::from(out.proven_optimal);
    }
    assert!(
        certified >= instances.len() - 2,
        "only {certified}/{} easy instances certified",
        instances.len()
    );
}

#[test]
fn difficult_cyclic_feasible_and_bounded() {
    for inst in suite::difficult_cyclic() {
        let out = Scg::new(ScgOptions::fast()).solve(&inst.matrix);
        assert!(out.solution.is_feasible(&inst.matrix), "{}", inst.name);
        assert!(out.lower_bound <= out.cost + 1e-9, "{}", inst.name);
        assert!(out.lower_bound > 0.0, "{} has trivial bound", inst.name);
    }
}

#[test]
fn challenging_feasible_and_bounded() {
    for inst in suite::challenging() {
        let out = Scg::new(ScgOptions::fast()).solve(&inst.matrix);
        assert!(out.solution.is_feasible(&inst.matrix), "{}", inst.name);
        assert!(out.lower_bound <= out.cost + 1e-9, "{}", inst.name);
    }
}

#[test]
fn steiner_instances_have_known_structure() {
    // STS(n) covers: the minimum cover of a Steiner triple system on n
    // points is well studied; sanity bounds: at least (n-1)/2 points are
    // needed (each point covers (n-1)/2 triples of the n(n-1)/6).
    for inst in suite::difficult_cyclic()
        .into_iter()
        .filter(|i| i.description.contains("Steiner"))
    {
        let n = inst.matrix.num_cols() as f64;
        let triples = inst.matrix.num_rows() as f64;
        let per_point = (n - 1.0) / 2.0;
        let counting_lb = (triples / per_point).ceil();
        let out = Scg::new(ScgOptions::fast()).solve(&inst.matrix);
        assert!(
            out.cost >= counting_lb - 1e-9,
            "{}: cover {} below counting bound {}",
            inst.name,
            out.cost,
            counting_lb
        );
    }
}
