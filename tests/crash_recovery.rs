//! Kill harness: a real `ucp serve --journal` process is crashed at
//! failpoint-chosen moments (mid journal append, mid fsync, mid
//! checkpoint emission), restarted on the same journal, and every
//! acknowledged job must reach a terminal state exactly once with no
//! cost regression. Requires `--features failpoints`.
#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use ucp::cover::CoverMatrix;
use ucp::ucp_core::wire::{JobSpec, JobState, SubmitBody};
use ucp::ucp_core::Preset;
use ucp::ucp_durability::{read_journal, Record};
use ucp::ucp_server::HttpClient;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp-crash-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sts9() -> CoverMatrix {
    CoverMatrix::from_rows(
        9,
        vec![
            vec![0, 1, 2],
            vec![3, 4, 5],
            vec![6, 7, 8],
            vec![0, 3, 6],
            vec![1, 4, 7],
            vec![2, 5, 8],
            vec![0, 4, 8],
            vec![1, 5, 6],
            vec![2, 3, 7],
            vec![0, 5, 7],
            vec![1, 3, 8],
            vec![2, 4, 6],
        ],
    )
}

fn body(seed: u64, num_iter: Option<usize>) -> SubmitBody {
    let mut spec = JobSpec::new(if num_iter.is_some() {
        Preset::Paper
    } else {
        Preset::Fast
    });
    spec.seed = Some(seed);
    spec.num_iter = num_iter;
    SubmitBody {
        matrix: sts9(),
        spec,
        tenant: None,
        trace: false,
    }
}

/// A served `ucp` child process; killed on drop so a failing test never
/// leaks servers.
struct Served {
    child: Child,
    addr: String,
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `ucp serve --journal <dir>` with `failpoints` armed via the
/// environment (empty = none) and waits for its listen address.
fn serve(journal: &Path, failpoints: &str) -> Served {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ucp"));
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "-j",
        "1",
        "--journal",
        journal.to_str().unwrap(),
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::null())
    .env_remove("UCP_FAILPOINTS");
    if !failpoints.is_empty() {
        cmd.env("UCP_FAILPOINTS", failpoints);
    }
    let mut child = cmd.spawn().expect("spawn ucp serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("serving ucp-api/2 on http://") {
            break rest.trim().to_string();
        }
    };
    // Drain the rest of stdout in the background so the child never
    // blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Served { child, addr }
}

/// Submits bodies until one fails (the crash landing mid-submission is
/// a legal outcome); returns the acknowledged wire ids.
fn submit_all(addr: &str, bodies: &[SubmitBody]) -> Vec<String> {
    let mut acked = Vec::new();
    let Ok(mut client) = HttpClient::new(addr) else {
        return acked;
    };
    for body in bodies {
        match client.submit(body) {
            Ok(Ok(status)) => acked.push(status.id),
            _ => break,
        }
    }
    acked
}

fn wait_for_exit(served: &mut Served) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match served.child.try_wait().expect("wait on child") {
            Some(status) => {
                assert!(!status.success(), "child was supposed to crash");
                return;
            }
            None => {
                assert!(
                    Instant::now() < deadline,
                    "armed failpoint never fired; child still alive"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn poll_done(client: &mut HttpClient, id: &str) -> ucp::ucp_core::wire::JobStatusDto {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client
            .poll(id)
            .expect("poll io")
            .unwrap_or_else(|(code, err)| panic!("job {id} not pollable: {code} {err:?}"));
        if status.state.is_terminal() {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never turned terminal");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One full crash/restart cycle: serve with `failpoints` armed, submit,
/// crash, restart clean, and check every acknowledged job terminates
/// with the known optimum. Returns the restarted server (still running),
/// the acked ids and the journal dir, for scenario-specific assertions.
fn crash_and_recover(
    tag: &str,
    failpoints: &str,
    bodies: &[SubmitBody],
) -> (Served, Vec<String>, PathBuf) {
    let journal = tmp_dir(tag);
    let mut crashed = serve(&journal, failpoints);
    let acked = submit_all(&crashed.addr, bodies);
    wait_for_exit(&mut crashed);
    drop(crashed);

    let recovered = serve(&journal, "");
    let mut client = HttpClient::new(&recovered.addr).expect("connect to restarted server");
    for id in &acked {
        let status = poll_done(&mut client, id);
        assert_eq!(status.state, JobState::Done, "job {id} after recovery");
        let result = status.result.expect("done job carries a result");
        assert_eq!(
            result.cost, 5.0,
            "job {id} lost ground across the crash (STS(9) optimum is 5)"
        );
    }
    (recovered, acked, journal)
}

/// Counts terminal records per job and asserts each resolved exactly once.
fn assert_exactly_once(journal: &Path, acked: &[String]) {
    let replay = read_journal(journal).expect("read journal");
    for id in acked {
        let numeric: u64 = id.trim_start_matches("j-").parse().unwrap();
        let terminals = replay
            .records
            .iter()
            .filter(|r| {
                matches!(r, Record::Done { job, .. } | Record::Failed { job, .. } | Record::Cancelled { job, .. } if *job == numeric)
            })
            .count();
        assert_eq!(terminals, 1, "job {id} resolved {terminals} times");
    }
}

fn stat_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle).map(|i| i + needle.len()).unwrap();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn crash_during_journal_append() {
    // The 5th journal append aborts the process: with three accepted
    // jobs and one worker, that lands after acceptance but before every
    // verdict is journaled.
    let bodies = [body(1, None), body(2, None), body(3, None)];
    let (server, acked, journal) =
        crash_and_recover("append", "durability::journal_write=abort;skip=4", &bodies);
    assert!(
        !acked.is_empty(),
        "no job was acknowledged before the crash"
    );
    let mut client = HttpClient::new(&server.addr).unwrap();
    let stats = client.get("/v1/stats").unwrap();
    assert!(stat_u64(stats.body_str(), "jobs_recovered") > 0);
    drop(server);
    assert_exactly_once(&journal, &acked);
    let _ = std::fs::remove_dir_all(&journal);
}

#[test]
fn crash_during_fsync() {
    let bodies = [body(4, None), body(5, None)];
    let (server, acked, journal) =
        crash_and_recover("fsync", "durability::fsync=abort;skip=3", &bodies);
    assert!(
        !acked.is_empty(),
        "no job was acknowledged before the crash"
    );
    drop(server);
    assert_exactly_once(&journal, &acked);
    let _ = std::fs::remove_dir_all(&journal);
}

#[test]
fn crash_during_checkpoint_resumes_the_solve() {
    // One long job (200 restarts): the 8th checkpoint emission aborts,
    // leaving several journaled checkpoints behind. The restarted
    // server must resume — not restart — the solve.
    let bodies = [body(6, Some(200))];
    let (server, acked, journal) =
        crash_and_recover("checkpoint", "engine::checkpoint=abort;skip=7", &bodies);
    assert_eq!(acked.len(), 1);
    let mut client = HttpClient::new(&server.addr).unwrap();
    let stats = client.get("/v1/stats").unwrap();
    let text = stats.body_str().to_string();
    assert!(stat_u64(&text, "jobs_recovered") > 0, "stats: {text}");
    assert!(
        stat_u64(&text, "resumed") > 0,
        "recovered job did not resume from its checkpoint: {text}"
    );
    drop(server);
    assert_exactly_once(&journal, &acked);
    let _ = std::fs::remove_dir_all(&journal);
}
