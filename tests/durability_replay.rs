//! Journal replay is idempotent and torn-tail tolerant: replaying a
//! journal twice yields the same recovery set, a crash mid-append never
//! corrupts the surviving prefix, and — proptest — a crash at *any*
//! byte offset recovers exactly the records whose frames fit before it.

use proptest::prelude::*;
use std::path::PathBuf;
use ucp::cover::CoverMatrix;
use ucp::ucp_core::wire::{JobResultDto, JobSpec, WireError};
use ucp::ucp_core::Preset;
use ucp::ucp_durability::{read_journal, Journal, Record, RecoverySet};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ucp-replay-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_matrix() -> CoverMatrix {
    CoverMatrix::from_rows(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
}

fn done_result() -> JobResultDto {
    JobResultDto {
        cost: 2.0,
        lower_bound: 1.5,
        proven_optimal: true,
        infeasible: false,
        columns: vec![0, 2],
        iterations: 1,
        subgradient_iterations: 10,
        degraded: false,
        total_seconds: 0.001,
        core_rows: 3,
        core_cols: 3,
    }
}

/// A journal's worth of lifecycle records across four jobs: one fully
/// resolved, one failed, one cancelled, one left incomplete.
fn lifecycle_records() -> Vec<Record> {
    let spec = JobSpec::new(Preset::Fast);
    vec![
        Record::Submitted {
            job: 1,
            t_ms: 100,
            spec: Some(spec.clone()),
            matrix: Some(small_matrix()),
            tenant: Some("acme".into()),
            deadline_ms: None,
        },
        Record::Started { job: 1, t_ms: 101 },
        Record::Submitted {
            job: 2,
            t_ms: 102,
            spec: Some(spec.clone()),
            matrix: Some(small_matrix()),
            tenant: None,
            deadline_ms: Some(5_000),
        },
        Record::Done {
            job: 1,
            t_ms: 110,
            result: done_result(),
        },
        Record::Started { job: 2, t_ms: 111 },
        Record::Failed {
            job: 2,
            t_ms: 112,
            error: WireError::new(ucp::ucp_core::wire::WireCode::Expired, "deadline exceeded"),
        },
        Record::Submitted {
            job: 3,
            t_ms: 113,
            spec: None,
            matrix: None,
            tenant: Some("zen".into()),
            deadline_ms: None,
        },
        Record::Cancelled { job: 3, t_ms: 114 },
        Record::Submitted {
            job: 4,
            t_ms: 115,
            spec: Some(spec),
            matrix: Some(small_matrix()),
            tenant: Some("acme".into()),
            deadline_ms: None,
        },
        Record::Started { job: 4, t_ms: 116 },
    ]
}

/// Writes `records` through the real append path and returns the raw
/// journal bytes.
fn journal_bytes(records: &[Record]) -> Vec<u8> {
    let dir = tmp_dir("bytes");
    let journal = Journal::open(&dir).unwrap().journal;
    for r in records {
        journal.append(r).unwrap();
    }
    let path = journal.path().to_path_buf();
    drop(journal);
    let bytes = std::fs::read(path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// Replays a raw byte image by writing it into a fresh journal dir.
fn replay_image(tag: &str, bytes: &[u8]) -> ucp::ucp_durability::Replay {
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ucp.journal"), bytes).unwrap();
    let replay = read_journal(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    replay
}

#[test]
fn replaying_twice_yields_the_same_recovery_set() {
    let records = lifecycle_records();
    let bytes = journal_bytes(&records);
    let first = replay_image("twice-a", &bytes);
    let second = replay_image("twice-b", &bytes);
    assert_eq!(first, second);
    let set_a = RecoverySet::from_records(&first.records);
    let set_b = RecoverySet::from_records(&second.records);
    assert_eq!(set_a.jobs.len(), set_b.jobs.len());
    assert_eq!(set_a.max_job_id, set_b.max_job_id);
    assert_eq!(
        set_a.incomplete().map(|j| j.job).collect::<Vec<_>>(),
        set_b.incomplete().map(|j| j.job).collect::<Vec<_>>()
    );
    // And opening the journal for writing (which truncates torn tails)
    // replays the identical record sequence.
    let dir = tmp_dir("twice-open");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ucp.journal"), &bytes).unwrap();
    let opened = Journal::open(&dir).unwrap();
    assert_eq!(opened.replay.records, first.records);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_record_recovers_the_prefix() {
    let records = lifecycle_records();
    let bytes = journal_bytes(&records);
    // Tear the last frame: drop the final byte.
    let torn = &bytes[..bytes.len() - 1];
    let replay = replay_image("torn", torn);
    assert_eq!(replay.records.len(), records.len() - 1);
    assert!(replay.torn_bytes > 0);
    assert_eq!(&replay.records[..], &records[..records.len() - 1]);
    // The torn record was job 4's `started`; its submission survives,
    // so the job is still recovered.
    let set = RecoverySet::from_records(&replay.records);
    assert!(set.jobs[&4].incomplete());
    assert!(set.jobs[&4].recoverable());
}

#[test]
fn garbage_tail_never_invents_records() {
    let records = lifecycle_records();
    let mut bytes = journal_bytes(&records);
    bytes.extend_from_slice(b"\xff\xfe\x00garbage that is not a frame");
    let replay = replay_image("garbage", &bytes);
    assert_eq!(replay.records, records);
    assert!(replay.torn_bytes > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash at any byte offset: the replay of the truncated file is
    /// exactly the records whose frames are fully contained in the
    /// prefix — no invented records, no lost complete frames, and the
    /// recovery set matches the one computed from those records.
    #[test]
    fn crash_at_any_offset_recovers_exactly_the_contained_prefix(frac in 0.0f64..1.0) {
        let records = lifecycle_records();
        let bytes = journal_bytes(&records);
        let cut = (bytes.len() as f64 * frac) as usize;
        let replay = replay_image("prop", &bytes[..cut]);

        // Expected: walk the intact file's frame boundaries.
        let full = replay_image("prop-full", &bytes);
        prop_assert_eq!(full.records.len(), records.len());
        let mut expect = 0usize;
        let mut pos = 0usize;
        while pos + 8 <= cut {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if pos + 8 + len > cut {
                break;
            }
            pos += 8 + len;
            expect += 1;
        }
        prop_assert_eq!(replay.records.len(), expect);
        prop_assert_eq!(&replay.records[..], &records[..expect]);

        // Replay is deterministic on the truncated image too.
        let again = replay_image("prop-again", &bytes[..cut]);
        prop_assert_eq!(replay, again);
    }
}
