//! Checkpoint/resume equivalence: a solve resumed from any checkpoint
//! of an uninterrupted run finishes with a cost no worse than the
//! uninterrupted answer, and a disabled checkpoint path changes nothing.

use ucp::cover::CoverMatrix;
use ucp::ucp_core::{Preset, Scg, ScgOutcome, SolveRequest, SolverCheckpoint};

/// STS(9): the Lagrangian bound (3) sits strictly below the optimum
/// (5), so no restart schedule certifies early — every run executes and
/// every checkpoint is reachable.
fn sts9() -> CoverMatrix {
    CoverMatrix::from_rows(
        9,
        vec![
            vec![0, 1, 2],
            vec![3, 4, 5],
            vec![6, 7, 8],
            vec![0, 3, 6],
            vec![1, 4, 7],
            vec![2, 5, 8],
            vec![0, 4, 8],
            vec![1, 5, 6],
            vec![2, 3, 7],
            vec![0, 5, 7],
            vec![1, 3, 8],
            vec![2, 4, 6],
        ],
    )
}

fn cycle(n: usize) -> CoverMatrix {
    CoverMatrix::from_rows(n, (0..n).map(|i| vec![i, (i + 1) % n]).collect())
}

/// One uninterrupted solve, capturing every per-run checkpoint.
fn solve_with_checkpoints(m: &CoverMatrix, preset: Preset) -> (ScgOutcome, Vec<SolverCheckpoint>) {
    let mut ckpts = Vec::new();
    let out = Scg::run(
        SolveRequest::for_matrix(m)
            .preset(preset)
            .checkpoint_every(1)
            .checkpoint_sink(|c| ckpts.push(c.clone())),
    )
    .unwrap();
    (out, ckpts)
}

#[test]
fn resume_from_any_checkpoint_never_loses_ground() {
    let m = sts9();
    let baseline = Scg::run(SolveRequest::for_matrix(&m).preset(Preset::Thorough)).unwrap();
    let (ckpt_run, ckpts) = solve_with_checkpoints(&m, Preset::Thorough);
    assert_eq!(
        ckpt_run.cost, baseline.cost,
        "emitting checkpoints must not change the answer"
    );
    assert!(
        ckpts.len() > 2,
        "Thorough runs many restarts; expected several checkpoints, got {}",
        ckpts.len()
    );
    for (i, ckpt) in ckpts.iter().enumerate() {
        let resumed = Scg::run(
            SolveRequest::for_matrix(&m)
                .preset(Preset::Thorough)
                .resume_from(ckpt.clone()),
        )
        .unwrap();
        assert!(
            resumed.cost <= baseline.cost,
            "checkpoint {i} (next_run {}) resumed to {} > uninterrupted {}",
            ckpt.next_run,
            resumed.cost,
            baseline.cost
        );
        assert_eq!(resumed.resumed, ckpt.next_run - 1);
        assert!(!resumed.infeasible);
    }
    // The last checkpoint carries the final incumbent: resuming from it
    // reproduces the uninterrupted answer exactly.
    let last = ckpts.last().unwrap();
    let resumed = Scg::run(
        SolveRequest::for_matrix(&m)
            .preset(Preset::Thorough)
            .resume_from(last.clone()),
    )
    .unwrap();
    assert_eq!(resumed.cost, baseline.cost);
}

#[test]
fn resume_ignores_checkpoints_from_another_instance() {
    let (_, ckpts) = solve_with_checkpoints(&sts9(), Preset::Fast);
    let foreign = ckpts.last().unwrap().clone();
    // A checkpoint for STS(9) offered to the 9-cycle: dimensions don't
    // match, so the solve silently starts cold and still answers.
    let out = Scg::run(
        SolveRequest::for_matrix(&cycle(9))
            .preset(Preset::Fast)
            .resume_from(foreign),
    )
    .unwrap();
    assert_eq!(out.resumed, 0, "mismatched checkpoint must be discarded");
    assert_eq!(out.cost, 5.0);
}

#[test]
fn resume_works_under_parallel_restarts() {
    let m = sts9();
    let (_, ckpts) = solve_with_checkpoints(&m, Preset::Thorough);
    let mid = ckpts[ckpts.len() / 2].clone();
    let serial = Scg::run(
        SolveRequest::for_matrix(&m)
            .preset(Preset::Thorough)
            .resume_from(mid.clone()),
    )
    .unwrap();
    let parallel = Scg::run(
        SolveRequest::for_matrix(&m)
            .preset(Preset::Thorough)
            .workers(4)
            .resume_from(mid),
    )
    .unwrap();
    assert_eq!(
        parallel.cost, serial.cost,
        "worker count must not change a resumed answer"
    );
    assert_eq!(parallel.resumed, serial.resumed);
}

#[test]
fn checkpoints_round_trip_through_json() {
    let (_, ckpts) = solve_with_checkpoints(&sts9(), Preset::Fast);
    for ckpt in &ckpts {
        let back = SolverCheckpoint::parse(&ckpt.to_json()).unwrap();
        assert_eq!(&back, ckpt);
    }
}

#[test]
fn multicover_solves_resume_too() {
    let m = sts9();
    let mut ckpts = Vec::new();
    let baseline = Scg::run(
        SolveRequest::for_matrix(&m)
            .preset(Preset::Paper)
            .coverage(vec![2; 12])
            .checkpoint_every(1)
            .checkpoint_sink(|c| ckpts.push(c.clone())),
    )
    .unwrap();
    assert!(!ckpts.is_empty(), "multicover path emits checkpoints");
    assert!(ckpts.iter().all(|c| c.multicover));
    let last = ckpts.last().unwrap().clone();
    let resumed = Scg::run(
        SolveRequest::for_matrix(&m)
            .preset(Preset::Paper)
            .coverage(vec![2; 12])
            .resume_from(last),
    )
    .unwrap();
    assert!(resumed.resumed > 0);
    assert!(
        resumed.cost <= baseline.cost,
        "multicover resume lost ground: {} > {}",
        resumed.cost,
        baseline.cost
    );
}
