//! Integration tests for the shared-core parallel restart engine: the
//! answer must be byte-identical for every worker count, the reduce
//! stage must run exactly once per solve, telemetry must merge cleanly
//! across workers, and one `time_limit` deadline must span all
//! partition blocks.

use std::time::{Duration, Instant};
use ucp::cover::CoverMatrix;
use ucp::ucp_core::{Scg, ScgOptions, SolveRequest};
use ucp::ucp_telemetry::{Event, Phase, RecordingProbe};

/// The Steiner triple system STS(9) as a point-cover problem. Its
/// Lagrangian bound (3) sits strictly below the optimum cover (5), so
/// no restart can certify at the bound floor and the whole `NumIter`
/// schedule runs — the right fixture for exercising worker pools.
fn sts9_rows() -> Vec<Vec<usize>> {
    vec![
        vec![0, 1, 2],
        vec![3, 4, 5],
        vec![6, 7, 8],
        vec![0, 3, 6],
        vec![1, 4, 7],
        vec![2, 5, 8],
        vec![0, 4, 8],
        vec![1, 5, 6],
        vec![2, 3, 7],
        vec![0, 5, 7],
        vec![1, 3, 8],
        vec![2, 4, 6],
    ]
}

fn sts9() -> CoverMatrix {
    CoverMatrix::from_rows(9, sts9_rows())
}

/// `k` disjoint copies of STS(9): reduction-stable (no rule crosses
/// components), so the cyclic core partitions into `k` blocks that the
/// engine solves independently.
fn sts9_blocks(k: usize) -> CoverMatrix {
    let mut rows = Vec::new();
    for b in 0..k {
        for line in sts9_rows() {
            rows.push(line.into_iter().map(|j| j + 9 * b).collect());
        }
    }
    CoverMatrix::from_rows(9 * k, rows)
}

fn opts_with(workers: usize, num_iter: usize) -> ScgOptions {
    ScgOptions {
        workers,
        num_iter,
        // These fixtures are tiny by design; disable the small-core serial
        // fallback so the pooled machinery is what actually runs.
        parallel_nnz_threshold: 0,
        ..ScgOptions::default()
    }
}

fn run_with(m: &CoverMatrix, workers: usize, num_iter: usize) -> ucp::ucp_core::ScgOutcome {
    Scg::run(SolveRequest::for_matrix(m).options(opts_with(workers, num_iter))).unwrap()
}

#[test]
fn worker_count_never_changes_the_answer() {
    for m in [sts9(), sts9_blocks(3)] {
        let base = run_with(&m, 1, 12);
        assert!(base.solution.is_feasible(&m));
        for workers in [2, 8] {
            let par = run_with(&m, workers, 12);
            assert_eq!(base.cost, par.cost, "cost diverged at {workers} workers");
            assert_eq!(
                base.solution.cols(),
                par.solution.cols(),
                "solution diverged at {workers} workers"
            );
            assert_eq!(base.lower_bound, par.lower_bound);
            assert_eq!(base.iterations, par.iterations);
        }
    }
}

/// The deprecated entrypoints (behind the `legacy-api` feature) are
/// shims over `Scg::run`; until they are removed, they must keep
/// returning exactly what the request route does.
#[cfg(feature = "legacy-api")]
#[test]
#[allow(deprecated)]
fn deprecated_entrypoints_match_the_request_route() {
    let m = sts9();
    let via_request = run_with(&m, 4, 8);
    let via_solve = Scg::new(opts_with(4, 8)).solve(&m);
    let via_parallel = Scg::new(opts_with(1, 8)).solve_parallel(&m, 4);
    for old in [&via_solve, &via_parallel] {
        assert_eq!(via_request.cost, old.cost);
        assert_eq!(via_request.solution.cols(), old.solution.cols());
        assert_eq!(via_request.lower_bound, old.lower_bound);
    }
}

#[test]
fn reduce_stage_runs_exactly_once_with_a_worker_pool() {
    let m = sts9_blocks(3);
    let mut probe = RecordingProbe::new();
    let par = Scg::run(
        SolveRequest::for_matrix(&m)
            .options(opts_with(8, 8))
            .probe(&mut probe),
    )
    .unwrap();
    let (mut implicit, mut explicit) = (0usize, 0usize);
    for te in probe.events() {
        if let Event::PhaseBegin { phase } = te.event {
            match phase {
                Phase::ImplicitReduction => implicit += 1,
                Phase::ExplicitReduction => explicit += 1,
                _ => {}
            }
        }
    }
    assert_eq!(implicit, 1, "implicit reduction must run once per solve");
    assert_eq!(explicit, 1, "explicit reduction must run once per solve");
    // The ZDD counters describe that single reduction, so they cannot
    // depend on the worker count.
    let serial = run_with(&m, 1, 8);
    assert_eq!(par.zdd_stats, serial.zdd_stats);
}

#[test]
fn parallel_trace_is_ordered_and_worker_tagged() {
    let mut probe = RecordingProbe::new();
    let m = sts9();
    let out = Scg::run(
        SolveRequest::for_matrix(&m)
            .options(opts_with(8, 10))
            .probe(&mut probe),
    )
    .unwrap();
    let mut expected_run = 1usize;
    let mut last_best = f64::INFINITY;
    let mut ends = 0usize;
    for te in probe.events() {
        match te.event {
            Event::RestartBegin { run, .. } => {
                assert_eq!(run, expected_run, "restarts must replay in run order");
            }
            Event::RestartEnd {
                run,
                cost,
                best_cost,
                ..
            } => {
                assert_eq!(run, expected_run);
                expected_run += 1;
                ends += 1;
                assert!(best_cost <= cost, "incumbent worse than the run's cover");
                assert!(best_cost <= last_best, "merged best_cost not monotone");
                last_best = best_cost;
            }
            _ => {}
        }
    }
    assert_eq!(ends, out.iterations, "one begin/end pair per restart");
    assert_eq!(last_best, out.cost, "final incumbent matches the outcome");
}

#[test]
fn recording_a_parallel_solve_does_not_perturb_it() {
    let m = sts9_blocks(2);
    let plain = run_with(&m, 4, 8);
    let mut probe = RecordingProbe::new();
    let recorded = Scg::run(
        SolveRequest::for_matrix(&m)
            .options(opts_with(4, 8))
            .probe(&mut probe),
    )
    .unwrap();
    assert_eq!(plain.cost, recorded.cost);
    assert_eq!(plain.solution.cols(), recorded.solution.cols());
    assert_eq!(plain.lower_bound, recorded.lower_bound);
    assert_eq!(plain.iterations, recorded.iterations);
    assert!(
        !probe.events().is_empty(),
        "recorded trace must not be empty"
    );
}

#[test]
fn one_deadline_spans_all_partition_blocks() {
    // Six gap blocks and a restart schedule far too long for the budget.
    // The old per-block accounting gave every block its own full budget
    // (≥ 6 × limit in the worst case); the shared deadline must finish in
    // roughly one budget plus a restart's slack, and still return the
    // feasible cover built from each block's initial ascent.
    let m = sts9_blocks(6);
    let budget = Duration::from_millis(500);
    let opts = ScgOptions {
        time_limit: Some(budget),
        ..opts_with(1, 50_000)
    };
    let start = Instant::now();
    let out = Scg::run(SolveRequest::for_matrix(&m).options(opts)).unwrap();
    let elapsed = start.elapsed();
    assert!(out.solution.is_feasible(&m));
    assert!(
        elapsed < budget * 3,
        "solve took {elapsed:?} against a {budget:?} shared budget"
    );
}
