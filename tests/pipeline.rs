//! End-to-end pipeline tests: PLA → primes → covering matrix → ZDD_SCG →
//! minimised, *verified* PLA — the full flow of the paper's system.

use ucp::logic::{build_covering, Pla};
use ucp::solvers::{branch_and_bound, BnbOptions};
use ucp::ucp_core::{Scg, SolveRequest};
use ucp::workloads::random_pla;

fn minimise_and_verify(pla: &Pla) -> (f64, f64, bool) {
    let inst = build_covering(pla).expect("within input limits");
    let outcome = Scg::run(SolveRequest::for_matrix(&inst.matrix)).unwrap();
    assert!(
        outcome.solution.is_feasible(&inst.matrix),
        "cover must be feasible"
    );
    let minimised = inst.solution_to_pla(&outcome.solution);
    assert!(
        inst.verify_against(pla, &minimised),
        "minimised PLA must realise the spec"
    );
    (outcome.cost, outcome.lower_bound, outcome.proven_optimal)
}

#[test]
fn single_output_textbook_function() {
    // f = Σ m(4,8,10,11,12,15) with DC(9,14) — the classic QM example
    // (with don't-cares the cover drops to 3 products).
    let mut src = String::from(".i 4\n.o 1\n");
    for m in [4u64, 8, 10, 11, 12, 15] {
        src.push_str(&format!(
            "{} 1\n",
            ucp::logic::Cube::minterm(m, 4).to_string_width(4)
        ));
    }
    for m in [9u64, 14] {
        src.push_str(&format!(
            "{} -\n",
            ucp::logic::Cube::minterm(m, 4).to_string_width(4)
        ));
    }
    src.push_str(".e\n");
    let pla: Pla = src.parse().unwrap();
    let (cost, lb, proven) = minimise_and_verify(&pla);
    assert_eq!(cost, 3.0, "with DC(9,14) three products suffice");
    assert_eq!(lb, 3.0);
    assert!(proven);
}

#[test]
fn multi_output_sharing_is_exploited() {
    // Both outputs contain x0x1x2; a shared implementation uses it once.
    let pla: Pla = ".i 3\n.o 2\n11- 10\n1-1 01\n.e\n".parse().unwrap();
    let inst = build_covering(&pla).unwrap();
    let exact = branch_and_bound(&inst.matrix, &BnbOptions::default());
    assert!(exact.optimal);
    // 11x for f0 needs {110,111}; 1x1 for f1 needs {101,111}: two products
    // minimum (111 shared helps only if the remaining singles merge, they
    // don't) — the covering optimum must be 2.
    assert_eq!(exact.cost, 2.0);
    let (cost, _, _) = minimise_and_verify(&pla);
    assert_eq!(cost, 2.0);
}

#[test]
fn random_plas_end_to_end() {
    for seed in 0..8u64 {
        let pla = random_pla(6, 2, 14, 150, seed);
        let inst = build_covering(&pla).unwrap();
        if inst.matrix.num_rows() == 0 {
            continue; // degenerate: constant-false outputs
        }
        let (cost, lb, _) = minimise_and_verify(&pla);
        assert!(lb <= cost + 1e-9, "seed {seed}: LB {lb} > cost {cost}");
        // The minimum cover can never exceed the original term count after
        // single-cube containment — sanity ceiling.
        assert!(cost <= pla.terms().len() as f64 + 1e-9, "seed {seed}");
    }
}

#[test]
fn scg_matches_exact_on_random_pla_matrices() {
    for seed in 100..110u64 {
        let pla = random_pla(5, 1, 10, 100, seed);
        let inst = build_covering(&pla).unwrap();
        if inst.matrix.num_rows() == 0 {
            continue;
        }
        let exact = branch_and_bound(&inst.matrix, &BnbOptions::default());
        assert!(exact.optimal, "seed {seed}");
        let scg = Scg::run(SolveRequest::for_matrix(&inst.matrix)).unwrap();
        assert!(
            scg.cost >= exact.cost - 1e-9,
            "seed {seed}: heuristic beat the optimum?!"
        );
        assert!(
            scg.lower_bound <= exact.cost + 1e-9,
            "seed {seed}: LB {} exceeds optimum {}",
            scg.lower_bound,
            exact.cost
        );
        if scg.proven_optimal {
            assert_eq!(scg.cost, exact.cost, "seed {seed}: bad certificate");
        }
        // The paper's headline: the heuristic nearly always hits the optimum.
        assert!(
            scg.cost <= exact.cost + 1.0,
            "seed {seed}: SCG {} vs optimum {}",
            scg.cost,
            exact.cost
        );
    }
}

#[test]
fn dont_cares_reduce_cover_size() {
    // Without DC: checkerboard needs 2 products; with the complement as DC
    // one universal product suffices.
    let without: Pla = ".i 2\n.o 1\n11 1\n00 1\n.e\n".parse().unwrap();
    let with: Pla = ".i 2\n.o 1\n11 1\n00 1\n01 -\n10 -\n.e\n".parse().unwrap();
    let (c1, _, _) = minimise_and_verify(&without);
    let (c2, _, _) = minimise_and_verify(&with);
    assert_eq!(c1, 2.0);
    assert_eq!(c2, 1.0);
}

#[test]
fn cube_level_espresso_agrees_with_exact_covering() {
    // Two independent minimisers: the cube-level EXPAND/IRREDUNDANT/REDUCE
    // heuristic can never beat the exact covering optimum, and both must
    // realise the spec.
    use ucp::logic::espresso::{minimize, realizes};
    for seed in 200..212u64 {
        let pla = random_pla(5, 2, 12, 150, seed);
        let cube_min = minimize(&pla, &Default::default());
        assert!(realizes(&pla, &cube_min), "seed {seed}");

        let inst = build_covering(&pla).unwrap();
        if inst.matrix.num_rows() == 0 {
            continue;
        }
        let exact = branch_and_bound(&inst.matrix, &BnbOptions::default());
        assert!(exact.optimal, "seed {seed}");
        assert!(
            cube_min.terms().len() as f64 >= exact.cost - 1e-9,
            "seed {seed}: cube-level {} beat exact covering {}",
            cube_min.terms().len(),
            exact.cost
        );
        // And the heuristic lands close (within 2 products on these sizes).
        assert!(
            cube_min.terms().len() as f64 <= exact.cost + 2.0,
            "seed {seed}: cube-level {} far from optimum {}",
            cube_min.terms().len(),
            exact.cost
        );
    }
}

#[test]
fn literal_objective_end_to_end() {
    use ucp::logic::{build_covering_with, TermCost};
    let pla: ucp::logic::Pla = ".i 3\n.o 1\n11- 1\n1-1 1\n011 1\n.e\n".parse().unwrap();
    let unit = build_covering(&pla).unwrap();
    let lex = build_covering_with(&pla, TermCost::ProductsThenLiterals).unwrap();
    let unit_out = Scg::run(SolveRequest::for_matrix(&unit.matrix)).unwrap();
    let lex_out = Scg::run(SolveRequest::for_matrix(&lex.matrix)).unwrap();
    // Same number of products (the primary objective survives the ε-costs).
    assert_eq!(unit_out.solution.len(), lex_out.solution.len());
    let min = lex.solution_to_pla(&lex_out.solution);
    assert!(lex.verify_against(&pla, &min));
}
