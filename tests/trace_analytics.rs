//! End-to-end trace analytics: a solve streamed through [`JsonlSink`]
//! must round-trip through `parse_trace` + [`TraceSummary`] into exactly
//! the numbers the solve itself reported in [`ScgOutcome`] — the offline
//! `ucp trace` profile and the live `--stats` report are two views of the
//! same data and may never disagree.

use ucp::cover::CoverMatrix;
use ucp::ucp_core::{Preset, Scg, SolveRequest};
use ucp::ucp_telemetry::{folded_stacks, parse_trace, JsonlSink, Phase, TraceSummary};

fn cyclic(n: usize) -> CoverMatrix {
    CoverMatrix::from_rows(
        n,
        (0..n).map(|i| vec![i, (i + 1) % n, (i + 3) % n]).collect(),
    )
}

/// Solves with a JSONL sink wired exactly like `ucp solve --trace`
/// (run_header + events + result line) and returns the raw trace bytes
/// alongside the outcome.
fn traced_solve(m: &CoverMatrix) -> (Vec<u8>, ucp::ucp_core::ScgOutcome) {
    let mut buf = Vec::new();
    let mut sink = JsonlSink::new(&mut buf);
    sink.write_line("run_header", |o| {
        o.field_str("instance", "cyclic");
        o.field_u64("rows", m.num_rows() as u64);
        o.field_u64("cols", m.num_cols() as u64);
    });
    let out = Scg::run(
        SolveRequest::for_matrix(m)
            .preset(Preset::Fast)
            .seed(7)
            .probe(&mut sink),
    )
    .expect("no cancel flag");
    sink.write_line("result", |o| {
        o.field_f64("cost", out.cost);
        o.field_f64("lower_bound", out.lower_bound);
        o.field_bool("proven_optimal", out.proven_optimal);
        o.field_bool("infeasible", out.infeasible);
        o.field_f64("total_seconds", out.total_time.as_secs_f64());
        o.field_raw("phase_times", &out.phase_times.to_json());
    });
    sink.finish().expect("in-memory sink never fails");
    (buf, out)
}

#[test]
fn trace_summary_reconciles_with_the_outcome() {
    let m = cyclic(14);
    let (bytes, out) = traced_solve(&m);
    let events = parse_trace(bytes.as_slice()).expect("trace parses");
    let summary = TraceSummary::from_events(&events);

    // Phase wall clock: both sides accumulate the same `phase_end`
    // durations. Summation order may differ (the outcome merges
    // per-block/per-worker accumulators), so agreement is to float
    // round-off, far below the 0.1ms the `--stats` table prints.
    for phase in Phase::ALL {
        let (traced, lived) = (summary.phase_times.get(phase), out.phase_times.get(phase));
        assert!(
            (traced - lived).abs() < 1e-9,
            "phase {} diverged between trace ({traced}) and outcome ({lived})",
            phase.name()
        );
    }

    // Subgradient work: the ascent-delimited count in the trace is the
    // exact number of iterations the solve reported.
    let sub = summary.subgradient.expect("solve ran the ascent");
    assert_eq!(sub.iterations, out.subgradient_iterations);
    assert_eq!(sub.events, out.subgradient_iterations, "dense trace");

    // The result line round-trips the outcome.
    let r = summary.result.expect("result line present");
    assert_eq!(r.cost, out.cost);
    assert_eq!(r.lower_bound, out.lower_bound);
    assert_eq!(r.proven_optimal, out.proven_optimal);
    assert_eq!(r.total_seconds, out.total_time.as_secs_f64());

    assert_eq!(summary.restarts, out.iterations);
}

#[test]
fn sampled_trace_keeps_exact_iteration_counts() {
    let m = cyclic(14);
    // Dense reference run, then a sampled run with the same seed: the
    // trace thins but the derived iteration count must not change.
    let (_, dense) = traced_solve(&m);
    let mut buf = Vec::new();
    let mut sink = JsonlSink::new(&mut buf);
    let out = Scg::run(
        SolveRequest::for_matrix(&m)
            .preset(Preset::Fast)
            .seed(7)
            .trace_every(25)
            .probe(&mut sink),
    )
    .expect("no cancel flag");
    sink.finish().expect("in-memory sink never fails");
    assert_eq!(out.cost, dense.cost, "sampling must not change the solve");

    let events = parse_trace(buf.as_slice()).expect("sampled trace parses");
    let sub = TraceSummary::from_events(&events)
        .subgradient
        .expect("iteration events present");
    assert_eq!(sub.iterations, out.subgradient_iterations);
    assert!(
        sub.events < sub.iterations,
        "trace_every(25) should thin the {} iterations, kept {}",
        sub.iterations,
        sub.events
    );
}

#[test]
fn folded_stacks_cover_the_whole_solve() {
    let m = cyclic(14);
    let (bytes, out) = traced_solve(&m);
    let events = parse_trace(bytes.as_slice()).expect("trace parses");
    let folded = folded_stacks(&events);
    assert!(!folded.is_empty());
    // Every line is flamegraph input: a semicolon-joined stack rooted at
    // `solve`, a space, an integer count.
    let mut total_us = 0u64;
    for (path, us) in &folded {
        assert!(path == "solve" || path.starts_with("solve;"), "{path}");
        assert!(!path.contains(' '));
        total_us += us;
    }
    // Exclusive frames cover at least the solve's wall clock: the root
    // absorbs time outside any phase, so the sum can't undershoot. It
    // *can* overshoot — nested re-ascents inside constructive runs are
    // CPU seconds, which exceed the wall clock exactly as repeated
    // calls do in a real profile — so there is no upper bound to check.
    let total = out.total_time.as_secs_f64();
    let sum = total_us as f64 / 1e6;
    assert!(
        sum >= total - 1e-3,
        "folded frames sum to {sum}s, below the solve's {total}s"
    );
    // The ascent dominates this instance; its frame must be present.
    assert!(folded
        .iter()
        .any(|(p, us)| p.ends_with(";subgradient") && *us > 0));
}
