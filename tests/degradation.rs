//! Governed-mode degradation: a starved ZDD node budget must not change
//! the answer. The solve falls back to the explicit reductions, reports
//! the fallback exactly once through telemetry, and lands on the same
//! cover cost as the unbudgeted route.

use ucp::ucp_core::{Preset, Scg, ScgOptions, SolveRequest};
use ucp::ucp_telemetry::{Event, RecordingProbe};
use ucp::workloads::suite;

#[test]
fn starved_budget_degrades_without_changing_the_cost() {
    let instances = suite::difficult_cyclic();
    assert!(instances.len() >= 3, "suite shrank under the test's feet");
    for inst in instances.iter().take(3) {
        let base = ScgOptions::preset(Preset::Fast);
        let unbudgeted =
            Scg::run(SolveRequest::for_matrix(&inst.matrix).options(base)).expect("no cancel flag");

        let mut starved = base;
        starved.core.kernel = starved.core.kernel.node_budget(16);
        let mut probe = RecordingProbe::new();
        let out = Scg::run(
            SolveRequest::for_matrix(&inst.matrix)
                .options(starved)
                .probe(&mut probe),
        )
        .expect("no cancel flag");

        assert!(
            out.degraded,
            "{}: a 16-node budget must trip the explicit fallback",
            inst.name
        );
        assert!(
            out.solution.is_feasible(&inst.matrix),
            "{}: degraded cover infeasible",
            inst.name
        );
        assert_eq!(
            out.cost, unbudgeted.cost,
            "{}: the degraded route changed the cover cost",
            inst.name
        );
        let degraded_events = probe
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::Degraded { .. }))
            .count();
        assert_eq!(
            degraded_events, 1,
            "{}: exactly one Degraded event per fallback",
            inst.name
        );
        assert!(
            probe.unbalanced_phases().is_empty(),
            "{}: degradation unbalanced the phase trace: {:?}",
            inst.name,
            probe.unbalanced_phases()
        );
    }
}

#[test]
fn unbudgeted_solves_never_degrade() {
    let inst = &suite::difficult_cyclic()[0];
    let out =
        Scg::run(SolveRequest::for_matrix(&inst.matrix).options(ScgOptions::preset(Preset::Fast)))
            .expect("no cancel flag");
    assert!(!out.degraded);
    assert_eq!(out.dropped_events, 0);
}
