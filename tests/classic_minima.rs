//! Regression tests against *published* minima: the classic semantically
//! defined Berkeley functions have known minimum SOP sizes, and the full
//! pipeline (PLA → primes → covering → ZDD_SCG) must reproduce them with a
//! certificate.

use ucp::logic::build_covering;
use ucp::ucp_core::{Scg, SolveRequest};
use ucp::workloads::classic;

fn solve_products(pla: &ucp::logic::Pla) -> (f64, bool) {
    let inst = build_covering(pla).expect("classics fit the pipeline");
    let out = Scg::run(SolveRequest::for_matrix(&inst.matrix)).unwrap();
    let minimised = inst.solution_to_pla(&out.solution);
    assert!(inst.verify_against(pla, &minimised));
    (out.cost, out.proven_optimal)
}

#[test]
fn xor5_minimum_is_sixteen() {
    // Parity admits no cube merging: minimum SOP = 2⁴ odd minterms.
    let (cost, proven) = solve_products(&classic::xor5());
    assert_eq!(cost, 16.0);
    assert!(proven);
}

#[test]
fn rd53_minimum_is_thirty_one() {
    // Published exact minimum for rd53.
    let (cost, proven) = solve_products(&classic::rd53());
    assert_eq!(cost, 31.0);
    assert!(proven);
}

#[test]
fn rd73_minimum_is_one_twenty_seven() {
    let (cost, proven) = solve_products(&classic::rd73());
    assert_eq!(cost, 127.0);
    assert!(proven);
}

#[test]
fn rd84_minimum_is_two_fifty_five() {
    let (cost, proven) = solve_products(&classic::rd84());
    assert_eq!(cost, 255.0);
    assert!(proven);
}

#[test]
fn majority_minima_are_the_threshold_subsets() {
    // Primes of majority-N are the ⌈N/2⌉-subsets; none is redundant.
    let (c5, p5) = solve_products(&classic::majority(5));
    assert_eq!(c5, 10.0); // C(5,3)
    assert!(p5);
    let (c7, p7) = solve_products(&classic::majority(7));
    assert_eq!(c7, 35.0); // C(7,4)
    assert!(p7);
}

#[test]
#[ignore = "≈15 s with default options; run with --ignored"]
fn nine_sym_minimum_is_eighty_four() {
    // The published exact minimum for 9sym is 84; ZDD_SCG certifies it
    // where the budgeted branch-and-bound cannot close the search.
    let (cost, proven) = solve_products(&classic::nine_sym());
    assert_eq!(cost, 84.0);
    assert!(proven);
}
