//! Integration tests for the batch solve engine: `ucp batch` semantics.
//!
//! The contract under test:
//! * a batch over a suite is **bit-identical** to a serial `Scg::run`
//!   loop — same cost, lower bound and chosen columns — for 1 and 4
//!   engine workers;
//! * a job cancelled mid-suite resolves to `JobError::Cancelled` and
//!   leaves every other job's result unchanged;
//! * a panicking job is contained the same way.

use std::sync::Arc;
use ucp::cover::{CoreOptions, CoverMatrix};
use ucp::ucp_core::{Preset, Scg, ScgOptions, ScgOutcome, SolveRequest, ZddOptions};
use ucp::ucp_engine::{Engine, EngineConfig, JobError};
use ucp::ucp_telemetry::{Event, Probe};
use ucp::workloads::suite;

/// A slice of the easy-cyclic suite, shared so requests are `'static`.
fn instances() -> Vec<(String, Arc<CoverMatrix>)> {
    suite::easy_cyclic()
        .into_iter()
        .take(10)
        .map(|i| (i.name, Arc::new(i.matrix)))
        .collect()
}

fn request(m: &Arc<CoverMatrix>) -> SolveRequest<'static> {
    SolveRequest::for_shared(Arc::clone(m)).preset(Preset::Fast)
}

fn serial_outcomes(insts: &[(String, Arc<CoverMatrix>)]) -> Vec<ScgOutcome> {
    insts
        .iter()
        .map(|(_, m)| Scg::run(request(m)).expect("no cancel flag"))
        .collect()
}

fn batch_outcomes(insts: &[(String, Arc<CoverMatrix>)], workers: usize) -> Vec<ScgOutcome> {
    let engine = Engine::start(EngineConfig {
        workers,
        queue_capacity: insts.len(),
    });
    let jobs: Vec<_> = insts
        .iter()
        .map(|(_, m)| engine.submit(request(m)).expect("engine accepts the suite"))
        .collect();
    let outs = jobs
        .into_iter()
        .map(|j| j.wait().expect("job completed"))
        .collect();
    let stats = engine.shutdown();
    assert_eq!(stats.completed, insts.len() as u64);
    outs
}

#[test]
fn batch_is_bit_identical_to_the_serial_loop() {
    let insts = instances();
    let serial = serial_outcomes(&insts);
    for workers in [1, 4] {
        let batch = batch_outcomes(&insts, workers);
        for ((name, _), (s, b)) in insts.iter().zip(serial.iter().zip(&batch)) {
            assert_eq!(s.cost, b.cost, "{name}: cost diverged at {workers} workers");
            assert_eq!(
                s.lower_bound, b.lower_bound,
                "{name}: bound diverged at {workers} workers"
            );
            assert_eq!(
                s.solution.cols(),
                b.solution.cols(),
                "{name}: solution diverged at {workers} workers"
            );
        }
    }
}

/// Kernel tunables are a speed/memory dial, never a semantics dial: a
/// 4-worker batch whose jobs run an aggressively collecting kernel
/// (tiny `gc_threshold`, full implicit reduction so the collector has
/// real work) must keep every job's peak node count under a configured
/// ceiling, actually collect, and still return bit-identical answers
/// to the same schedule on the default kernel.
#[test]
fn batch_with_gc_kernel_stays_under_the_node_ceiling() {
    const NODE_CEILING: usize = 4096;
    let insts = instances();
    let schedule = |kernel: ZddOptions| ScgOptions {
        core: CoreOptions {
            // Disable the MaxR/MaxC early exit so the implicit phase
            // reduces to a fixpoint and crosses GC checkpoints.
            max_rows: 0,
            max_cols: 0,
            kernel,
            ..CoreOptions::default()
        },
        ..Preset::Fast.options()
    };
    let reference: Vec<ScgOutcome> = insts
        .iter()
        .map(|(_, m)| {
            Scg::run(
                SolveRequest::for_shared(Arc::clone(m)).options(schedule(ZddOptions::default())),
            )
            .expect("no cancel flag")
        })
        .collect();
    let engine = Engine::start(EngineConfig {
        workers: 4,
        queue_capacity: insts.len(),
    });
    let kernel = ZddOptions::new().gc_threshold(64).gc_ratio(1.1);
    let jobs: Vec<_> = insts
        .iter()
        .map(|(_, m)| {
            engine
                .submit(SolveRequest::for_shared(Arc::clone(m)).options(schedule(kernel)))
                .unwrap()
        })
        .collect();
    let outs: Vec<ScgOutcome> = jobs.into_iter().map(|j| j.wait().unwrap()).collect();
    engine.shutdown();
    let mut gc_runs = 0u64;
    for ((name, _), (got, want)) in insts.iter().zip(outs.iter().zip(&reference)) {
        assert!(
            got.zdd_stats.peak_nodes <= NODE_CEILING,
            "{name}: peak {} nodes breached the {NODE_CEILING}-node ceiling",
            got.zdd_stats.peak_nodes
        );
        gc_runs += got.zdd_stats.gc_runs;
        assert_eq!(got.cost, want.cost, "{name}: GC kernel changed the cost");
        assert_eq!(
            got.lower_bound, want.lower_bound,
            "{name}: GC kernel changed the bound"
        );
        assert_eq!(
            got.solution.cols(),
            want.solution.cols(),
            "{name}: GC kernel changed the chosen columns"
        );
    }
    assert!(gc_runs >= 1, "aggressive kernel never collected");
}

/// STS(9) with a huge restart schedule: its Lagrangian bound never
/// certifies, so the job runs until cancelled — a worker-parking fixture.
fn blocker_request() -> SolveRequest<'static> {
    let m = Arc::new(CoverMatrix::from_rows(
        9,
        vec![
            vec![0, 1, 2],
            vec![3, 4, 5],
            vec![6, 7, 8],
            vec![0, 3, 6],
            vec![1, 4, 7],
            vec![2, 5, 8],
            vec![0, 4, 8],
            vec![1, 5, 6],
            vec![2, 3, 7],
            vec![0, 5, 7],
            vec![1, 3, 8],
            vec![2, 4, 6],
        ],
    ));
    SolveRequest::for_shared(m).options(ScgOptions {
        num_iter: 5_000_000,
        ..ScgOptions::default()
    })
}

#[test]
fn cancelled_job_does_not_poison_later_jobs() {
    let insts = instances();
    let serial = serial_outcomes(&insts);
    // One worker, so the victim is guaranteed still queued when cancelled.
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: insts.len() + 2,
    });
    let blocker = engine.submit(blocker_request()).unwrap();
    let victim = engine.submit(blocker_request()).unwrap();
    let rest: Vec<_> = insts
        .iter()
        .map(|(_, m)| engine.submit(request(m)).unwrap())
        .collect();
    victim.cancel();
    blocker.cancel();
    assert!(matches!(blocker.wait(), Err(JobError::Cancelled)));
    assert!(matches!(victim.wait(), Err(JobError::Cancelled)));
    for ((name, _), (job, want)) in insts.iter().zip(rest.into_iter().zip(&serial)) {
        let got = job.wait().expect("later job unaffected by cancellation");
        assert_eq!(
            got.cost, want.cost,
            "{name}: cost changed after a cancellation"
        );
        assert_eq!(
            got.solution.cols(),
            want.solution.cols(),
            "{name}: solution changed after a cancellation"
        );
    }
    engine.shutdown();
}

struct PanicProbe;

impl Probe for PanicProbe {
    fn record(&mut self, _: Event) {
        panic!("engine_batch test probe panic");
    }
}

#[test]
fn panicking_job_does_not_poison_later_jobs() {
    let insts = instances();
    let serial = serial_outcomes(&insts);
    let engine = Engine::start(EngineConfig {
        workers: 1,
        queue_capacity: insts.len() + 1,
    });
    let (_, m0) = &insts[0];
    let bomb = engine
        .submit(request(m0).trace_sink(Box::new(PanicProbe)))
        .unwrap();
    let rest: Vec<_> = insts
        .iter()
        .map(|(_, m)| engine.submit(request(m)).unwrap())
        .collect();
    assert!(matches!(bomb.wait(), Err(JobError::Panicked(_))));
    for ((name, _), (job, want)) in insts.iter().zip(rest.into_iter().zip(&serial)) {
        let got = job.wait().expect("later job unaffected by the panic");
        assert_eq!(got.cost, want.cost, "{name}: cost changed after a panic");
        assert_eq!(
            got.solution.cols(),
            want.solution.cols(),
            "{name}: solution changed after a panic"
        );
    }
    let stats = engine.shutdown();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, insts.len() as u64);
}
