//! Parser robustness fuzz: arbitrary byte soup and near-miss documents
//! fed to the PLA and matrix parsers must come back as `Err`, never as a
//! panic (a panicking parser would take down a whole batch job for one
//! corrupt input file).

use proptest::prelude::*;
use ucp::cover::CoverMatrix;
use ucp::logic::Pla;

/// Raw soup: arbitrary bytes squeezed through lossy UTF-8.
fn byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=255, 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Near-miss documents: lines assembled from each format's own
/// vocabulary, so the fuzz spends its cases just off the happy path
/// (wrong widths, shuffled directives, truncated headers) instead of in
/// the trivially-rejected region.
fn token_soup(tokens: &'static [&'static str]) -> impl Strategy<Value = String> {
    let token = (0..tokens.len()).prop_map(move |i| tokens[i]);
    let line = prop::collection::vec(token, 0..6).prop_map(|ts| ts.join(" "));
    prop::collection::vec(line, 0..12).prop_map(|ls| ls.join("\n"))
}

const PLA_TOKENS: &[&str] = &[
    ".i", ".o", ".p", ".e", ".type", ".ilb", ".ob", "fr", "2", "3", "64", "-1", "01-", "10", "---",
    "1", "0", "~", "#x",
];

const MATRIX_TOKENS: &[&str] = &[
    "p",
    "ucp",
    "r",
    "c",
    "2",
    "3",
    "0",
    "1",
    "-1",
    "99999999999999999999",
    "#",
    "row",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pla_parser_never_panics_on_byte_soup(s in byte_soup()) {
        let _ = s.parse::<Pla>();
    }

    #[test]
    fn pla_parser_never_panics_on_near_miss_documents(s in token_soup(PLA_TOKENS)) {
        let _ = s.parse::<Pla>();
    }

    #[test]
    fn matrix_parser_never_panics_on_byte_soup(s in byte_soup()) {
        let _ = s.parse::<CoverMatrix>();
    }

    #[test]
    fn matrix_parser_never_panics_on_near_miss_documents(s in token_soup(MATRIX_TOKENS)) {
        let _ = s.parse::<CoverMatrix>();
    }
}
